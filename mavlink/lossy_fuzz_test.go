// Lossy-link fuzz corpus: the parser fed through faultx.LossyLink, which
// mangles framed telemetry the way a marginal radio does. External test
// package because faultx (via the campaign's autopilot import) depends on
// mavlink.
package mavlink_test

import (
	"testing"
	"testing/quick"

	"dronedse/faultx"
	"dronedse/mavlink"
)

// heartbeatStream returns n marshaled heartbeat frames.
func heartbeatStream(t testing.TB, n int) [][]byte {
	var chunks [][]byte
	for i := 0; i < n; i++ {
		f := mavlink.Frame{Seq: uint8(i), MsgID: mavlink.MsgHeartbeat,
			Payload: mavlink.EncodeHeartbeat(mavlink.Heartbeat{Mode: uint8(i % 7), TimeMS: uint32(i)})}
		raw, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, raw)
	}
	return chunks
}

// runLossy pushes n frames through a link with the given probabilities and
// returns the parser plus the byte ledger.
func runLossy(t testing.TB, seed int64, n int, drop, corrupt, dup, trunc, reorder float64) (p mavlink.Parser, pushed, framed, decoded int) {
	link := faultx.NewLossyLink(seed)
	link.DropProb, link.CorruptProb = drop, corrupt
	link.DupProb, link.TruncProb, link.ReorderProb = dup, trunc, reorder
	push := func(b []byte) {
		pushed += len(b)
		for _, fr := range p.Push(b) {
			framed += 8 + len(fr.Payload)
			if fr.MsgID == mavlink.MsgHeartbeat {
				if _, err := mavlink.DecodeHeartbeat(fr.Payload); err == nil {
					decoded++
				}
			}
		}
	}
	for _, c := range heartbeatStream(t, n) {
		if out := link.Transmit(c); len(out) > 0 {
			push(out)
		}
	}
	if out := link.Flush(); len(out) > 0 {
		push(out)
	}
	return p, pushed, framed, decoded
}

// TestParserSurvivesLossyLink runs radio-damaged telemetry through the
// parser: no panics, every discarded byte accounted for, and the undamaged
// majority of frames still decodes.
func TestParserSurvivesLossyLink(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p, pushed, framed, decoded := runLossy(t, seed, 400, 0.15, 0.25, 0.1, 0.2, 0.1)
		if got := framed + p.Discarded + p.BufferedBytes(); got != pushed {
			t.Errorf("seed %d: byte ledger broken: framed %d + discarded %d + buffered %d != pushed %d",
				seed, framed, p.Discarded, p.BufferedBytes(), pushed)
		}
		if p.BadCRC == 0 {
			t.Errorf("seed %d: 25%% corruption produced no CRC failures", seed)
		}
		if decoded < 100 {
			t.Errorf("seed %d: only %d/400 heartbeats survived the link", seed, decoded)
		}
		if decoded > 400+p.Complete { // sanity: duplication can add, not invent
			t.Errorf("seed %d: decoded %d heartbeats from 400 sent", seed, decoded)
		}
	}
}

// TestParserLossyConservationQuick property-checks the byte-conservation
// invariant over arbitrary link seeds.
func TestParserLossyConservationQuick(t *testing.T) {
	f := func(seed int64) bool {
		p, pushed, framed, _ := runLossy(t, seed, 60, 0.2, 0.3, 0.15, 0.25, 0.15)
		return framed+p.Discarded+p.BufferedBytes() == pushed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestParserCleanLinkLossless: the zero-probability link must deliver every
// frame with zero discards — the transparency contract end to end.
func TestParserCleanLinkLossless(t *testing.T) {
	p, pushed, framed, decoded := runLossy(t, 1, 100, 0, 0, 0, 0, 0)
	if decoded != 100 || p.Complete != 100 {
		t.Errorf("clean link: decoded %d, complete %d, want 100", decoded, p.Complete)
	}
	if p.Discarded != 0 || p.BufferedBytes() != 0 || framed != pushed {
		t.Errorf("clean link leaked bytes: framed %d pushed %d discarded %d buffered %d",
			framed, pushed, p.Discarded, p.BufferedBytes())
	}
}
