package mavlink

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestX25KnownVector(t *testing.T) {
	// CRC-16/X.25-style accumulation: must be stable and non-trivial.
	a := X25([]byte("123456789"))
	b := X25([]byte("123456789"))
	if a != b {
		t.Fatal("CRC not deterministic")
	}
	if a == 0 || a == 0xFFFF {
		t.Fatalf("degenerate CRC value %#x", a)
	}
	if X25([]byte("123456788")) == a {
		t.Error("single-bit change not detected")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Seq: 7, SysID: 1, CompID: 2, MsgID: MsgAttitude, Payload: []byte{1, 2, 3, 4}}
	raw, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	frames := p.Push(raw)
	if len(frames) != 1 {
		t.Fatalf("decoded %d frames", len(frames))
	}
	got := frames[0]
	if got.Seq != 7 || got.SysID != 1 || got.CompID != 2 || got.MsgID != MsgAttitude ||
		!bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestFrameTooLarge(t *testing.T) {
	f := Frame{Payload: make([]byte, 300)}
	if _, err := f.Marshal(); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestParserHandlesFragmentation(t *testing.T) {
	var stream []byte
	want := 20
	for i := 0; i < want; i++ {
		f := Frame{Seq: uint8(i), MsgID: MsgHeartbeat, Payload: EncodeHeartbeat(Heartbeat{Mode: uint8(i)})}
		raw, _ := f.Marshal()
		stream = append(stream, raw...)
	}
	var p Parser
	var got int
	r := rand.New(rand.NewSource(5))
	for len(stream) > 0 {
		n := 1 + r.Intn(7)
		if n > len(stream) {
			n = len(stream)
		}
		got += len(p.Push(stream[:n]))
		stream = stream[n:]
	}
	if got != want {
		t.Errorf("decoded %d of %d fragmented frames", got, want)
	}
}

func TestParserResyncsThroughGarbage(t *testing.T) {
	f := Frame{MsgID: MsgHeartbeat, Payload: EncodeHeartbeat(Heartbeat{Mode: 3})}
	raw, _ := f.Marshal()
	stream := append([]byte{0x00, 0x12, 0xAB}, raw...)
	stream = append(stream, 0xFF, 0x01)
	stream = append(stream, raw...)
	var p Parser
	frames := p.Push(stream)
	if len(frames) != 2 {
		t.Fatalf("decoded %d frames through garbage, want 2", len(frames))
	}
	if p.Resyncs == 0 {
		t.Error("no resyncs counted")
	}
}

func TestParserRejectsCorruptCRC(t *testing.T) {
	f := Frame{MsgID: MsgHeartbeat, Payload: EncodeHeartbeat(Heartbeat{Mode: 3})}
	raw, _ := f.Marshal()
	raw[7] ^= 0x40 // flip a payload bit
	var p Parser
	if frames := p.Push(raw); len(frames) != 0 {
		t.Fatalf("corrupt frame accepted: %+v", frames)
	}
	if p.BadCRC == 0 {
		t.Error("bad CRC not counted")
	}
}

func TestCRCExtraDetectsMsgIDConfusion(t *testing.T) {
	// Same payload bytes under a different msgid must fail CRC, because
	// the CRC seed differs per message (the CRC_EXTRA mechanism).
	f := Frame{MsgID: MsgHeartbeat, Payload: EncodeHeartbeat(Heartbeat{Mode: 3})}
	raw, _ := f.Marshal()
	raw[5] = byte(MsgBatteryStatus) // lie about the type
	var p Parser
	if frames := p.Push(raw); len(frames) != 0 {
		t.Error("msgid confusion not caught by CRC_EXTRA")
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	h := Heartbeat{Mode: 4, Armed: true, TimeMS: 123456}
	got, err := DecodeHeartbeat(EncodeHeartbeat(h))
	if err != nil || got != h {
		t.Errorf("round trip = %+v, %v", got, err)
	}
	if _, err := DecodeHeartbeat([]byte{1}); err == nil {
		t.Error("short heartbeat accepted")
	}
}

func TestAttitudeRoundTrip(t *testing.T) {
	a := Attitude{TimeMS: 9, Roll: 0.1, Pitch: -0.2, Yaw: 3.1, RollRate: 1, PitchRate: 2, YawRate: -3}
	got, err := DecodeAttitude(EncodeAttitude(a))
	if err != nil || got != a {
		t.Errorf("round trip = %+v, %v", got, err)
	}
	if _, err := DecodeAttitude(nil); err == nil {
		t.Error("empty attitude accepted")
	}
}

func TestGlobalPositionRoundTrip(t *testing.T) {
	g := GlobalPosition{TimeMS: 1, X: 10, Y: -20, Z: 30, VX: 1, VY: 2, VZ: 3}
	got, err := DecodeGlobalPosition(EncodeGlobalPosition(g))
	if err != nil || got != g {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

func TestBatteryStatusRoundTrip(t *testing.T) {
	b := BatteryStatus{VoltageV: 11.1, SoC: 0.7, PowerW: 130}
	got, err := DecodeBatteryStatus(EncodeBatteryStatus(b))
	if err != nil || got != b {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

func TestStatusTextRoundTrip(t *testing.T) {
	s := StatusText{Severity: 2, Text: "SLAM started"}
	got, err := DecodeStatusText(EncodeStatusText(s))
	if err != nil || got != s {
		t.Errorf("round trip = %+v, %v", got, err)
	}
	long := StatusText{Text: string(make([]byte, 500))}
	if enc := EncodeStatusText(long); len(enc) > 201 {
		t.Error("status text not truncated")
	}
	if _, err := DecodeStatusText(nil); err == nil {
		t.Error("empty status text accepted")
	}
}

func TestCommandLongRoundTrip(t *testing.T) {
	c := CommandLong{Command: CmdTakeoff, Param: [4]float32{5, 0, 0, 0}}
	got, err := DecodeCommandLong(EncodeCommandLong(c))
	if err != nil || got != c {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

func TestMissionItemRoundTrip(t *testing.T) {
	m := MissionItem{Index: 3, X: 1, Y: 2, Z: 3, HoldS: 1.5}
	got, err := DecodeMissionItem(EncodeMissionItem(m))
	if err != nil || got != m {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seq, sys, comp uint8, msgSel uint8, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		fr := Frame{Seq: seq, SysID: sys, CompID: comp,
			MsgID: MsgID(msgSel % 7), Payload: payload}
		raw, err := fr.Marshal()
		if err != nil {
			return false
		}
		var p Parser
		out := p.Push(raw)
		return len(out) == 1 && bytes.Equal(out[0].Payload, payload) &&
			out[0].MsgID == fr.MsgID && out[0].Seq == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
