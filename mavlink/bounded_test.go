package mavlink

import (
	"math/rand"
	"testing"
)

// frameWireBytes sums the wire size of decoded frames.
func frameWireBytes(frames []Frame) int {
	n := 0
	for _, f := range frames {
		n += 8 + len(f.Payload)
	}
	return n
}

// TestPushBoundedBuffer floods the parser with 10 MB of garbage — including
// plenty of magic bytes that start frames which never complete — and
// asserts the internal buffer stays bounded instead of retaining the flood.
func TestPushBoundedBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var p Parser
	const total = 10 << 20
	pushed, framed := 0, 0
	chunk := make([]byte, 64<<10)
	for pushed < total {
		r.Read(chunk)
		// Salt the garbage with magics so resync has constant work.
		for i := 0; i < len(chunk); i += 97 {
			chunk[i] = Magic
		}
		framed += frameWireBytes(p.Push(chunk))
		pushed += len(chunk)
	}
	bound := 2 * DefaultMaxBuffer
	if got := p.BufferCap(); got > bound {
		t.Errorf("buffer capacity grew to %d after a %d byte flood (bound %d)", got, pushed, bound)
	}
	if got := p.BufferedBytes(); got >= maxFrameLen {
		t.Errorf("buffered bytes = %d, want < one frame (%d)", got, maxFrameLen)
	}
	// Byte conservation: everything pushed is decoded, discarded, or held.
	if got := framed + p.Discarded + p.BufferedBytes(); got != pushed {
		t.Errorf("byte accounting: frames %d + discarded %d + buffered %d = %d, pushed %d",
			framed, p.Discarded, p.BufferedBytes(), got, pushed)
	}
}

// TestPushSmallMaxBuffer verifies frames still decode when the configured
// cap is below one max-length frame (the parser raises it internally) and
// when valid frames straddle the chunked consumption boundary.
func TestPushSmallMaxBuffer(t *testing.T) {
	p := Parser{MaxBuffer: 16}
	var stream []byte
	const n = 50
	for i := 0; i < n; i++ {
		f := Frame{Seq: uint8(i), MsgID: MsgHeartbeat,
			Payload: EncodeHeartbeat(Heartbeat{Mode: uint8(i), TimeMS: uint32(i)})}
		raw, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, raw...)
	}
	got := len(p.Push(stream))
	if got != n {
		t.Fatalf("decoded %d frames, want %d", got, n)
	}
	if p.Discarded != 0 || p.BufferedBytes() != 0 {
		t.Errorf("clean stream: discarded=%d buffered=%d, want 0/0", p.Discarded, p.BufferedBytes())
	}
}

// TestPushByteConservationQuick checks the conservation invariant over
// random interleavings of valid frames and noise pushed byte-by-byte.
func TestPushByteConservationQuick(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var p Parser
	var stream []byte
	for i := 0; i < 40; i++ {
		if r.Intn(2) == 0 {
			f := Frame{Seq: uint8(i), MsgID: MsgAttitude,
				Payload: EncodeAttitude(Attitude{TimeMS: uint32(i)})}
			raw, _ := f.Marshal()
			stream = append(stream, raw...)
		} else {
			noise := make([]byte, r.Intn(40))
			r.Read(noise)
			stream = append(stream, noise...)
		}
	}
	framed := 0
	for _, b := range stream {
		framed += frameWireBytes(p.Push([]byte{b}))
	}
	if got := framed + p.Discarded + p.BufferedBytes(); got != len(stream) {
		t.Errorf("byte accounting: %d != pushed %d (framed %d, discarded %d, buffered %d)",
			got, len(stream), framed, p.Discarded, p.BufferedBytes())
	}
}
