// Package mavlink implements a compact MAVLink-v1-style telemetry protocol
// (framing, X.25 CRC with per-message seeding, streaming parser with resync)
// — the communication layer of Figure 5 that "delivers stats to the ground
// station and, if necessary, offloads computations to another node".
package mavlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Magic is the frame start byte (MAVLink v1 uses 0xFE).
const Magic = 0xFE

// MaxPayload is the largest payload a frame can carry.
const MaxPayload = 255

// MsgID identifies a message type.
type MsgID uint8

// Message identifiers.
const (
	MsgHeartbeat MsgID = iota
	MsgAttitude
	MsgGlobalPosition
	MsgBatteryStatus
	MsgStatusText
	MsgCommandLong
	MsgMissionItem
	MsgParamSet
	MsgParamValue
)

// crcExtra seeds the CRC per message type so sender/receiver disagree loudly
// on layout changes (the MAVLink CRC_EXTRA mechanism).
var crcExtra = map[MsgID]byte{
	MsgHeartbeat:      50,
	MsgAttitude:       39,
	MsgGlobalPosition: 104,
	MsgBatteryStatus:  154,
	MsgStatusText:     83,
	MsgCommandLong:    152,
	MsgMissionItem:    254,
	MsgParamSet:       168,
	MsgParamValue:     220,
}

// Frame is one wire frame.
type Frame struct {
	Seq     uint8
	SysID   uint8
	CompID  uint8
	MsgID   MsgID
	Payload []byte
}

// X25 computes the CRC-16/X.25 (the MAVLink checksum) over data.
func X25(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		tmp := uint16(b) ^ (crc & 0xFF)
		tmp ^= (tmp << 4) & 0xFF
		crc = (crc >> 8) ^ (tmp << 8) ^ (tmp << 3) ^ (tmp >> 4)
	}
	return crc
}

// Marshal serializes the frame.
func (f Frame) Marshal() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, errors.New("mavlink: payload too large")
	}
	buf := make([]byte, 0, 8+len(f.Payload))
	buf = append(buf, Magic, byte(len(f.Payload)), f.Seq, f.SysID, f.CompID, byte(f.MsgID))
	buf = append(buf, f.Payload...)
	crc := X25(append(buf[1:], crcExtra[f.MsgID]))
	var cb [2]byte
	binary.LittleEndian.PutUint16(cb[:], crc)
	return append(buf, cb[:]...), nil
}

// maxFrameLen is the largest possible wire frame: header + max payload +
// CRC.
const maxFrameLen = 8 + MaxPayload

// DefaultMaxBuffer is the parser's default cap on buffered bytes. After any
// Push returns, at most one incomplete frame (< maxFrameLen bytes) remains
// buffered; the cap additionally bounds the transient working set while a
// large chunk is being consumed, so garbage floods cannot grow the backing
// array without bound.
const DefaultMaxBuffer = 1 << 14

// Parser is a streaming frame decoder: feed arbitrary byte chunks, collect
// complete frames; garbage and CRC failures are skipped with resync. The
// internal buffer is compacted as bytes are consumed and capped at
// MaxBuffer, so a garbage flood costs O(MaxBuffer) memory, not O(input).
type Parser struct {
	buf []byte
	// MaxBuffer caps the buffered byte count (0 means DefaultMaxBuffer;
	// values below one max-length frame are raised to it).
	MaxBuffer int
	BadCRC    int
	Resyncs   int
	Complete  int
	// Discarded counts every byte dropped without decoding: resync skips,
	// CRC-failed sync bytes, and overflow drops. Conservation invariant:
	// bytes pushed == bytes in returned frames (8+len(Payload) each)
	//              + Discarded + BufferedBytes().
	Discarded int
}

// BufferedBytes returns the number of bytes currently held for reassembly.
func (p *Parser) BufferedBytes() int { return len(p.buf) }

// BufferCap returns the capacity of the internal buffer (tests assert the
// garbage-flood bound on it).
func (p *Parser) BufferCap() int { return cap(p.buf) }

// Push appends bytes and returns any complete frames decoded. Input larger
// than the buffer cap is consumed in bounded slices, so the working set
// stays O(MaxBuffer) regardless of chunk size.
func (p *Parser) Push(data []byte) []Frame {
	max := p.MaxBuffer
	if max <= 0 {
		max = DefaultMaxBuffer
	}
	if max < maxFrameLen {
		max = maxFrameLen
	}
	var out []Frame
	for {
		if n := max - len(p.buf); n > 0 {
			if n > len(data) {
				n = len(data)
			}
			p.buf = append(p.buf, data[:n]...)
			data = data[n:]
		}
		out = p.parse(out)
		if len(data) == 0 {
			return out
		}
	}
}

// parse consumes as many frames as possible from the buffer, compacting it
// afterwards so consumed prefixes do not pin the backing array.
func (p *Parser) parse(out []Frame) []Frame {
	start := 0 // consumed prefix
	for {
		// find magic
		i := start
		for i < len(p.buf) && p.buf[i] != Magic {
			i++
		}
		if i > start {
			p.Resyncs++
			p.Discarded += i - start
			start = i
		}
		rem := p.buf[start:]
		if len(rem) < 8 {
			break
		}
		plen := int(rem[1])
		total := 8 + plen
		if len(rem) < total {
			break
		}
		frame := Frame{
			Seq:     rem[2],
			SysID:   rem[3],
			CompID:  rem[4],
			MsgID:   MsgID(rem[5]),
			Payload: append([]byte(nil), rem[6:6+plen]...),
		}
		wire := binary.LittleEndian.Uint16(rem[6+plen : 8+plen])
		calc := X25(append(append([]byte(nil), rem[1:6+plen]...), crcExtra[frame.MsgID]))
		if wire == calc {
			p.Complete++
			out = append(out, frame)
			start += total
		} else {
			p.BadCRC++
			p.Discarded++ // the sync byte is dropped; resync rescans the rest
			start++
		}
	}
	if start > 0 {
		// Compact in place: the copy overlaps, which copy() handles.
		n := copy(p.buf, p.buf[start:])
		p.buf = p.buf[:n]
	}
	return out
}

// --- Message payloads ---

// Heartbeat announces liveness and mode.
type Heartbeat struct {
	Mode   uint8
	Armed  bool
	TimeMS uint32
}

// Attitude reports roll/pitch/yaw and body rates.
type Attitude struct {
	TimeMS                       uint32
	Roll, Pitch, Yaw             float32
	RollRate, PitchRate, YawRate float32
}

// GlobalPosition reports position and velocity (local ENU here).
type GlobalPosition struct {
	TimeMS     uint32
	X, Y, Z    float32
	VX, VY, VZ float32
}

// BatteryStatus reports pack state.
type BatteryStatus struct {
	VoltageV float32
	SoC      float32 // 0..1
	PowerW   float32
}

// StatusText carries a severity-tagged log line.
type StatusText struct {
	Severity uint8
	Text     string
}

// CommandLong carries a parametrized command (arm, takeoff, set-mode...).
type CommandLong struct {
	Command uint16
	Param   [4]float32
}

// Command numbers for CommandLong.
const (
	CmdArm uint16 = iota + 400
	CmdTakeoff
	CmdLand
	CmdRTL
	CmdStartMission
)

// MissionItem uploads one waypoint.
type MissionItem struct {
	Index   uint16
	X, Y, Z float32
	HoldS   float32
}

func putF32(b []byte, v float32) { binary.LittleEndian.PutUint32(b, math.Float32bits(v)) }
func getF32(b []byte) float32    { return math.Float32frombits(binary.LittleEndian.Uint32(b)) }

// EncodeHeartbeat packs a heartbeat frame payload.
func EncodeHeartbeat(h Heartbeat) []byte {
	b := make([]byte, 6)
	b[0] = h.Mode
	if h.Armed {
		b[1] = 1
	}
	binary.LittleEndian.PutUint32(b[2:], h.TimeMS)
	return b
}

// DecodeHeartbeat unpacks a heartbeat payload.
func DecodeHeartbeat(b []byte) (Heartbeat, error) {
	if len(b) != 6 {
		return Heartbeat{}, fmt.Errorf("mavlink: heartbeat payload %d bytes", len(b))
	}
	return Heartbeat{Mode: b[0], Armed: b[1] == 1, TimeMS: binary.LittleEndian.Uint32(b[2:])}, nil
}

// EncodeAttitude packs an attitude payload.
func EncodeAttitude(a Attitude) []byte {
	b := make([]byte, 28)
	binary.LittleEndian.PutUint32(b, a.TimeMS)
	for i, v := range []float32{a.Roll, a.Pitch, a.Yaw, a.RollRate, a.PitchRate, a.YawRate} {
		putF32(b[4+4*i:], v)
	}
	return b
}

// DecodeAttitude unpacks an attitude payload.
func DecodeAttitude(b []byte) (Attitude, error) {
	if len(b) != 28 {
		return Attitude{}, fmt.Errorf("mavlink: attitude payload %d bytes", len(b))
	}
	return Attitude{
		TimeMS: binary.LittleEndian.Uint32(b),
		Roll:   getF32(b[4:]), Pitch: getF32(b[8:]), Yaw: getF32(b[12:]),
		RollRate: getF32(b[16:]), PitchRate: getF32(b[20:]), YawRate: getF32(b[24:]),
	}, nil
}

// EncodeGlobalPosition packs a position payload.
func EncodeGlobalPosition(g GlobalPosition) []byte {
	b := make([]byte, 28)
	binary.LittleEndian.PutUint32(b, g.TimeMS)
	for i, v := range []float32{g.X, g.Y, g.Z, g.VX, g.VY, g.VZ} {
		putF32(b[4+4*i:], v)
	}
	return b
}

// DecodeGlobalPosition unpacks a position payload.
func DecodeGlobalPosition(b []byte) (GlobalPosition, error) {
	if len(b) != 28 {
		return GlobalPosition{}, fmt.Errorf("mavlink: position payload %d bytes", len(b))
	}
	return GlobalPosition{
		TimeMS: binary.LittleEndian.Uint32(b),
		X:      getF32(b[4:]), Y: getF32(b[8:]), Z: getF32(b[12:]),
		VX: getF32(b[16:]), VY: getF32(b[20:]), VZ: getF32(b[24:]),
	}, nil
}

// EncodeBatteryStatus packs a battery payload.
func EncodeBatteryStatus(s BatteryStatus) []byte {
	b := make([]byte, 12)
	putF32(b, s.VoltageV)
	putF32(b[4:], s.SoC)
	putF32(b[8:], s.PowerW)
	return b
}

// DecodeBatteryStatus unpacks a battery payload.
func DecodeBatteryStatus(b []byte) (BatteryStatus, error) {
	if len(b) != 12 {
		return BatteryStatus{}, fmt.Errorf("mavlink: battery payload %d bytes", len(b))
	}
	return BatteryStatus{VoltageV: getF32(b), SoC: getF32(b[4:]), PowerW: getF32(b[8:])}, nil
}

// EncodeStatusText packs a status-text payload (text truncated to 200 bytes).
func EncodeStatusText(s StatusText) []byte {
	txt := s.Text
	if len(txt) > 200 {
		txt = txt[:200]
	}
	b := make([]byte, 1+len(txt))
	b[0] = s.Severity
	copy(b[1:], txt)
	return b
}

// DecodeStatusText unpacks a status-text payload.
func DecodeStatusText(b []byte) (StatusText, error) {
	if len(b) < 1 {
		return StatusText{}, errors.New("mavlink: empty status text")
	}
	return StatusText{Severity: b[0], Text: string(b[1:])}, nil
}

// EncodeCommandLong packs a command payload.
func EncodeCommandLong(c CommandLong) []byte {
	b := make([]byte, 18)
	binary.LittleEndian.PutUint16(b, c.Command)
	for i, v := range c.Param {
		putF32(b[2+4*i:], v)
	}
	return b
}

// DecodeCommandLong unpacks a command payload.
func DecodeCommandLong(b []byte) (CommandLong, error) {
	if len(b) != 18 {
		return CommandLong{}, fmt.Errorf("mavlink: command payload %d bytes", len(b))
	}
	c := CommandLong{Command: binary.LittleEndian.Uint16(b)}
	for i := range c.Param {
		c.Param[i] = getF32(b[2+4*i:])
	}
	return c, nil
}

// EncodeMissionItem packs a waypoint payload.
func EncodeMissionItem(m MissionItem) []byte {
	b := make([]byte, 18)
	binary.LittleEndian.PutUint16(b, m.Index)
	putF32(b[2:], m.X)
	putF32(b[6:], m.Y)
	putF32(b[10:], m.Z)
	putF32(b[14:], m.HoldS)
	return b
}

// DecodeMissionItem unpacks a waypoint payload.
func DecodeMissionItem(b []byte) (MissionItem, error) {
	if len(b) != 18 {
		return MissionItem{}, fmt.Errorf("mavlink: mission item payload %d bytes", len(b))
	}
	return MissionItem{
		Index: binary.LittleEndian.Uint16(b),
		X:     getF32(b[2:]), Y: getF32(b[6:]), Z: getF32(b[10:]),
		HoldS: getF32(b[14:]),
	}, nil
}

// Param carries one named tunable — the MAVLink parameter protocol the
// artifact uses to reconfigure the drone mid-flight. Names are up to 16
// ASCII characters, zero-padded on the wire.
type Param struct {
	Name  string
	Value float32
}

// EncodeParam packs a PARAM_SET / PARAM_VALUE payload.
func EncodeParam(p Param) []byte {
	b := make([]byte, 20)
	n := p.Name
	if len(n) > 16 {
		n = n[:16]
	}
	copy(b, n)
	putF32(b[16:], p.Value)
	return b
}

// DecodeParam unpacks a parameter payload.
func DecodeParam(b []byte) (Param, error) {
	if len(b) != 20 {
		return Param{}, fmt.Errorf("mavlink: param payload %d bytes", len(b))
	}
	name := b[:16]
	end := 0
	for end < 16 && name[end] != 0 {
		end++
	}
	return Param{Name: string(name[:end]), Value: getF32(b[16:])}, nil
}
