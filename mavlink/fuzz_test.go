package mavlink

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParserNeverPanicsOnGarbage pushes arbitrary byte soup through the
// parser: it must survive, keep its counters consistent, and never return
// a frame longer than the wire allows.
func TestParserNeverPanicsOnGarbage(t *testing.T) {
	f := func(chunks [][]byte) bool {
		var p Parser
		frames := 0
		for _, c := range chunks {
			frames += len(p.Push(c))
		}
		if p.Complete != frames {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParserRecoversAfterGarbage interleaves valid frames with random noise
// at every boundary: every valid frame must still decode (the CRC may very
// occasionally bless a noise run as a frame — that is the protocol's
// documented 2^-16 residual risk — but real frames must not be lost).
func TestParserRecoversAfterGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var p Parser
	want := 0
	decodedHeartbeats := 0
	count := func(frames []Frame) {
		for _, fr := range frames {
			if fr.MsgID == MsgHeartbeat {
				if _, err := DecodeHeartbeat(fr.Payload); err == nil {
					decodedHeartbeats++
				}
			}
		}
	}
	for i := 0; i < 200; i++ {
		// Noise burst; frames stalled behind an earlier bogus header may
		// be released here.
		noise := make([]byte, r.Intn(30))
		r.Read(noise)
		count(p.Push(noise))
		// valid frame
		f := Frame{Seq: uint8(i), MsgID: MsgHeartbeat,
			Payload: EncodeHeartbeat(Heartbeat{Mode: uint8(i % 7), TimeMS: uint32(i)})}
		raw, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		want++
		count(p.Push(raw))
	}
	// A noise byte that looked like a frame header can hold real frames
	// hostage until its claimed length fills; flush the pipeline so the
	// delayed frames emerge (they are delayed, never dropped).
	count(p.Push(make([]byte, 600)))
	if decodedHeartbeats < want {
		t.Errorf("decoded %d of %d heartbeats through noise", decodedHeartbeats, want)
	}
}

// TestStreamSplitInvariance: however a valid stream is chunked, the same
// frames come out.
func TestStreamSplitInvariance(t *testing.T) {
	var stream []byte
	const n = 30
	for i := 0; i < n; i++ {
		f := Frame{Seq: uint8(i), MsgID: MsgGlobalPosition,
			Payload: EncodeGlobalPosition(GlobalPosition{TimeMS: uint32(i), X: float32(i)})}
		raw, _ := f.Marshal()
		stream = append(stream, raw...)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var p Parser
		got := 0
		rest := stream
		for len(rest) > 0 {
			k := 1 + r.Intn(11)
			if k > len(rest) {
				k = len(rest)
			}
			got += len(p.Push(rest[:k]))
			rest = rest[k:]
		}
		return got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDecodersRejectShortPayloads: every decoder must reject truncated
// payloads rather than read out of bounds.
func TestDecodersRejectShortPayloads(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		// None of these may panic; errors are fine.
		DecodeHeartbeat(raw)
		DecodeAttitude(raw)
		DecodeGlobalPosition(raw)
		DecodeBatteryStatus(raw)
		DecodeStatusText(raw)
		DecodeCommandLong(raw)
		DecodeMissionItem(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
