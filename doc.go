// Package dronedse is a Go reproduction of "Quantifying the Design-Space
// Tradeoffs in Autonomous Drones" (Hadidi et al., ASPLOS 2021): an
// analytical drone design-space model built from a component survey and
// propulsion physics, a full simulated flight stack (6-DOF plant, sensors,
// EKF, cascaded PID, autopilot, MAVLink), a from-scratch visual SLAM
// pipeline with hardware platform models, and a trace-driven
// micro-architecture simulator — plus a harness that regenerates every
// table and figure in the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package dronedse
