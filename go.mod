module dronedse

go 1.24
