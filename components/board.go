package components

// BoardClass mirrors Table 4's grouping of flight controllers and
// computation hardware.
type BoardClass int

const (
	// BasicController provides only inner-loop functions with limited
	// outer-loop capabilities (Table 4 "Basic").
	BasicController BoardClass = iota
	// ImprovedController provides customizable inner-loop functions and
	// some outer-loop functions (Table 4 "Improved").
	ImprovedController
	// FPVCamera is a first-person-view camera (Table 4 external sensors).
	FPVCamera
	// LiDARUnit is a drone LiDAR solution; all are self-powered
	// stand-alone packages around 1 kg (§3.1).
	LiDARUnit
)

// Board is one row of Table 4: a flight controller, compute board, or
// external sensor with its weight and power draw.
type Board struct {
	Name    string
	Class   BoardClass
	WeightG float64
	// PowerW is the electrical power consumption in watts.
	PowerW float64
	// SelfPowered marks units that ship their own battery (the LiDARs);
	// their power does not load the main pack but their weight does.
	SelfPowered bool
}

// Table4 reproduces the paper's Table 4 inventory. Power figures are the
// published current @ 5 V converted to watts (e.g. Pixhawk 4: 400 mA@5 V =
// 2 W) or the published wattage.
func Table4() []Board {
	return []Board{
		// Basic flight controllers.
		{Name: "iFlight SucceX-E F4", Class: BasicController, WeightG: 7.6, PowerW: 0.5},
		{Name: "DJI NAZA-M Lite", Class: BasicController, WeightG: 66.3, PowerW: 1.5},
		{Name: "DJI NAZA-M V2", Class: BasicController, WeightG: 82, PowerW: 1.5},
		{Name: "Pixhawk 4", Class: BasicController, WeightG: 15.8, PowerW: 2},
		{Name: "Mateksys F405", Class: BasicController, WeightG: 17, PowerW: 1},
		// Improved controllers / compute boards.
		{Name: "Intel Aero", Class: ImprovedController, WeightG: 30, PowerW: 10},
		{Name: "Navio2", Class: ImprovedController, WeightG: 23, PowerW: 0.75},
		{Name: "Raspberry Pi 4", Class: ImprovedController, WeightG: 50, PowerW: 5},
		{Name: "Nvidia Jetson TX2", Class: ImprovedController, WeightG: 85, PowerW: 10},
		{Name: "DJI Manifold", Class: ImprovedController, WeightG: 200, PowerW: 20},
		// FPV cameras.
		{Name: "Eachine Bat 19S 800TVL", Class: FPVCamera, WeightG: 8, PowerW: 0.25},
		{Name: "RunCam Night Eagle 2", Class: FPVCamera, WeightG: 14.5, PowerW: 1},
		// LiDAR packages (self-powered, §3.1).
		{Name: "HoverMap", Class: LiDARUnit, WeightG: 1800, PowerW: 50, SelfPowered: true},
		{Name: "YellowScan Surveyor", Class: LiDARUnit, WeightG: 1600, PowerW: 15, SelfPowered: true},
		{Name: "Ultra Puck", Class: LiDARUnit, WeightG: 925, PowerW: 10, SelfPowered: true},
	}
}

// ComputeTier is the two-level abstraction §3.2 sweeps: a 3 W chip standing
// for a commercial ultra-low-power flight controller and a 20 W chip
// standing for a GPU-CPU (TX2-class) system.
type ComputeTier struct {
	Name    string
	PowerW  float64
	WeightG float64
}

// BasicComputeTier and AdvancedComputeTier are the paper's two modeled
// compute levels (§3.1 "we assumed two levels of power consumption: a 3 W
// and a 20 W chip").
var (
	BasicComputeTier    = ComputeTier{Name: "3W basic controller", PowerW: 3, WeightG: 20}
	AdvancedComputeTier = ComputeTier{Name: "20W GPU-CPU system", PowerW: 20, WeightG: 85}
)

// FindBoard returns the Table 4 row with the given name.
func FindBoard(name string) (Board, bool) {
	for _, b := range Table4() {
		if b.Name == name {
			return b, true
		}
	}
	return Board{}, false
}
