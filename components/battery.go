// Package components reproduces the paper's commercial-component survey
// (§3.1): 250 LiPo batteries, 40 ESCs, 25 frames, motor data from 150
// manufacturers, and the flight controller / compute board / sensor specs of
// Table 4. The paper scraped real spec sheets; since those sheets are not
// shipped with the paper, the catalogs here are synthesized deterministically
// around the regression lines the paper publishes, with realistic scatter and
// ranges, so that the fitting pipeline (internal/fit) re-derives the paper's
// formulas and every downstream consumer (internal/core) is exercised exactly
// as in the paper.
package components

import (
	"fmt"
	"math/rand"

	"dronedse/fit"
	"dronedse/units"
)

// Battery is one commercial LiPo battery product.
type Battery struct {
	Name         string
	Manufacturer string
	// Cells is the series cell count (xS); nominal voltage is 3.7 V/cell.
	Cells int
	// CapacityMah is the rated capacity in mAh.
	CapacityMah float64
	// WeightG is the product weight in grams, including casing, wires and
	// protection circuits (§3.1: the end product, not bare cells).
	WeightG float64
	// DischargeC is the battery's C rating (Table 3).
	DischargeC float64
}

// Voltage returns the pack's nominal voltage.
func (b Battery) Voltage() float64 { return units.CellsToVoltage(b.Cells) }

// EnergyWh returns the rated stored energy in watt-hours.
func (b Battery) EnergyWh() float64 { return units.MahToWh(b.CapacityMah, b.Voltage()) }

// MaxContinuousCurrentA returns the safe continuous current per Table 3.
func (b Battery) MaxContinuousCurrentA() float64 {
	return units.CRatingMaxCurrent(b.CapacityMah, b.DischargeC)
}

// BatteryLine holds the published Figure 7 weight(g) = Slope*capacity(mAh) +
// Intercept relationship for one cell configuration.
type BatteryLine struct {
	Slope     float64
	Intercept float64
}

// Figure7Lines are the capacity-to-weight lines the paper extracts from 250
// commercial batteries, keyed by cell count (Figure 7 legend, top to bottom).
var Figure7Lines = map[int]BatteryLine{
	6: {0.116, 159.117},
	5: {0.118, 45.478},
	4: {0.077, 81.265},
	3: {0.074, 16.935},
	2: {0.050, 12.316},
	1: {0.019, 4.856},
}

// BatteryWeightModel predicts the weight in grams of a LiPo pack with the
// given cell count and capacity using the Figure 7 relationships. Cell counts
// outside 1-6 are clamped into range.
func BatteryWeightModel(cells int, capacityMah float64) float64 {
	if cells < 1 {
		cells = 1
	}
	if cells > 6 {
		cells = 6
	}
	l := Figure7Lines[cells]
	return l.Slope*capacityMah + l.Intercept
}

// capacityRange gives realistic mAh spans per configuration: high-voltage
// packs for big drones skew large, 1S toy packs skew small.
func capacityRange(cells int) (lo, hi float64) {
	switch cells {
	case 1:
		return 150, 3500
	case 2:
		return 300, 5500
	case 3:
		return 450, 8000
	case 4:
		return 650, 9000
	case 5:
		return 1000, 10000
	default: // 6S
		return 1300, 10000
	}
}

var batteryVendors = []string{
	"Tattu", "Turnigy", "Gens Ace", "CNHL", "Zeee", "Ovonic", "HRB",
	"Venom", "Lumenier", "ThunderPower", "Zippy", "GoldBat", "Spektrum",
	"Dinogy", "RDQ", "MaxAmps", "Infinity", "Bonka", "Pulse", "Floureon",
}

// GenerateBatteryCatalog returns a deterministic 250-battery catalog whose
// per-configuration regressions reproduce the paper's Figure 7 lines: ~42
// products per cell count, capacities spanning the configuration's market
// range, weights scattered around the published line, and discharge rates of
// 20-120C that (as the paper observes) thicken the scatter without moving
// the fitted lines.
func GenerateBatteryCatalog(seed int64) []Battery {
	r := rand.New(rand.NewSource(seed))
	const total = 250
	var out []Battery
	for i := 0; i < total; i++ {
		cells := 1 + i%6 // round-robin keeps ~42 per configuration
		lo, hi := capacityRange(cells)
		cap := lo + r.Float64()*(hi-lo)
		cap = float64(int(cap/50)) * 50 // products come in 50 mAh steps
		if cap < lo {
			cap = lo
		}
		base := BatteryWeightModel(cells, cap)
		// Scatter: manufacturing variance plus a mild positive pull from
		// high discharge rates (heavier tabs/wires), ~5% band.
		c := 20 + float64(r.Intn(11))*10 // 20..120 C
		weight := base * (1 + 0.05*r.NormFloat64() + 0.0003*(c-60))
		if weight < 3 {
			weight = 3
		}
		vendor := batteryVendors[r.Intn(len(batteryVendors))]
		out = append(out, Battery{
			Name:         fmt.Sprintf("%s %dS %.0fmAh %0.0fC", vendor, cells, cap, c),
			Manufacturer: vendor,
			Cells:        cells,
			CapacityMah:  cap,
			WeightG:      weight,
			DischargeC:   c,
		})
	}
	return out
}

// FitBatteryCatalog regresses weight against capacity per cell configuration,
// reproducing Figure 7's extraction step.
func FitBatteryCatalog(batteries []Battery) (map[int]fit.Linear, error) {
	groups := make(map[int][]fit.Point)
	for _, b := range batteries {
		groups[b.Cells] = append(groups[b.Cells], fit.Point{X: b.CapacityMah, Y: b.WeightG})
	}
	return fit.GroupedFit(groups)
}

// SelectBattery returns the lightest catalog battery with at least the given
// cell count and capacity, or ok=false when none exists. The design-space
// search (internal/core) uses the analytic model instead; this helper serves
// the example programs that shop the catalog directly.
func SelectBattery(catalog []Battery, cells int, minCapacityMah float64) (Battery, bool) {
	best := Battery{}
	found := false
	for _, b := range catalog {
		if b.Cells != cells || b.CapacityMah < minCapacityMah {
			continue
		}
		if !found || b.WeightG < best.WeightG {
			best, found = b, true
		}
	}
	return best, found
}
