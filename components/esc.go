package components

import (
	"fmt"
	"math/rand"

	"dronedse/fit"
)

// ESCClass separates the two ESC families of Figure 8a.
type ESCClass int

const (
	// LongFlight ESCs sustain continuous current for normal missions;
	// they carry heavier MOSFETs and capacitors.
	LongFlight ESCClass = iota
	// ShortFlight ESCs target racing (<5 min): lighter parts that
	// overheat on longer flights.
	ShortFlight
)

// String implements fmt.Stringer.
func (c ESCClass) String() string {
	if c == ShortFlight {
		return "short-flight"
	}
	return "long-flight"
}

// ESC is one commercial electronic speed controller product. Weights follow
// the paper's convention of reporting the total for a set of four (quadcopter
// BoM view).
type ESC struct {
	Name string
	// MaxCurrentA is the maximum continuous current per ESC (A).
	MaxCurrentA float64
	// Weight4xG is the weight of four ESCs in grams (Figure 8a's y-axis).
	Weight4xG float64
	Class     ESCClass
	// SwitchingKHz is the commutation switching frequency (§2.1.2:
	// 60-600 kHz).
	SwitchingKHz float64
}

// Figure8aLines are the published current-to-weight fits: long-flight
// y = 4.9678x - 15.757 and short-flight y = 1.2269x + 11.816 (x = max
// continuous current per ESC, y = weight of 4 ESCs).
var Figure8aLines = map[ESCClass]BatteryLine{
	LongFlight:  {4.9678, -15.757},
	ShortFlight: {1.2269, 11.816},
}

// ESCWeightModel predicts the 4x-ESC weight in grams for a required
// per-ESC continuous current, by class, clamped to a 8 g floor (connectors
// and wire are never free).
func ESCWeightModel(class ESCClass, maxCurrentA float64) float64 {
	l := Figure8aLines[class]
	w := l.Slope*maxCurrentA + l.Intercept
	if w < 8 {
		w = 8
	}
	return w
}

var escVendors = []string{
	"Hobbywing", "T-Motor", "iFlight", "Holybro", "BLHeli", "Spedix",
	"Lumenier", "Aikon", "EMAX", "Racerstar",
}

// GenerateESCCatalog returns a deterministic 40-ESC catalog (Figure 8a): 20
// long-flight products spanning 10-90 A and 20 short-flight racing products,
// scattered around the published lines.
func GenerateESCCatalog(seed int64) []ESC {
	r := rand.New(rand.NewSource(seed))
	var out []ESC
	for i := 0; i < 40; i++ {
		class := LongFlight
		if i%2 == 1 {
			class = ShortFlight
		}
		cur := 10 + r.Float64()*80
		cur = float64(int(cur/5)) * 5 // 5 A product steps
		if cur < 10 {
			cur = 10
		}
		w := ESCWeightModel(class, cur) * (1 + 0.06*r.NormFloat64())
		if w < 8 {
			w = 8
		}
		out = append(out, ESC{
			Name:         fmt.Sprintf("%s %s %0.0fA", escVendors[r.Intn(len(escVendors))], class, cur),
			MaxCurrentA:  cur,
			Weight4xG:    w,
			Class:        class,
			SwitchingKHz: 60 + r.Float64()*540,
		})
	}
	return out
}

// FitESCCatalog regresses 4x-ESC weight against per-ESC max continuous
// current per class, reproducing Figure 8a's extraction.
func FitESCCatalog(escs []ESC) (map[ESCClass]fit.Linear, error) {
	groups := make(map[ESCClass][]fit.Point)
	for _, e := range escs {
		groups[e.Class] = append(groups[e.Class], fit.Point{X: e.MaxCurrentA, Y: e.Weight4xG})
	}
	return fit.GroupedFit(groups)
}

// SelectESC returns the lightest catalog ESC of the class able to sustain
// the required per-ESC current, or ok=false when none can.
func SelectESC(catalog []ESC, class ESCClass, requiredA float64) (ESC, bool) {
	best := ESC{}
	found := false
	for _, e := range catalog {
		if e.Class != class || e.MaxCurrentA < requiredA {
			continue
		}
		if !found || e.Weight4xG < best.Weight4xG {
			best, found = e, true
		}
	}
	return best, found
}
