package components

// WeightItem is one slice of the open-source drone's weight breakdown
// (Figure 14).
type WeightItem struct {
	Name    string
	WeightG float64
}

// OurDroneBreakdown reproduces Figure 14: the weight breakdown of the
// paper's open-source 450 mm drone (Crazepony F450 frame, Navio2 + RPi).
func OurDroneBreakdown() []WeightItem {
	return []WeightItem{
		{"Frame", 272},
		{"Battery", 248},
		{"Motors", 220},
		{"ESC", 112},
		{"RPi", 50},
		{"Propellers", 40},
		{"GPS", 30},
		{"Navio2", 23},
		{"Misc", 20},
		{"RC Receiver", 17},
		{"Telemetry", 15},
		{"Power Module", 15},
		{"PPM Encoder", 9},
	}
}

// OurDroneTotalWeightG sums the Figure 14 breakdown (~1061 g).
func OurDroneTotalWeightG() float64 {
	total := 0.0
	for _, it := range OurDroneBreakdown() {
		total += it.WeightG
	}
	return total
}

// OurDrone returns the open-source platform as a commercial-drone-style
// record for plotting against the Figure 10b sweep. The paper's measured
// averages: 130 W whole-drone in flight, 3000 mAh 3S battery, RPi+Navio2
// compute.
func OurDrone() CommercialDrone {
	return CommercialDrone{
		Name:             "Our Drone (open-source F450)",
		TakeoffWeightG:   OurDroneTotalWeightG(),
		BatteryWh:        33.3, // 3000 mAh x 11.1 V
		Cells:            3,
		RatedFlightMin:   13,
		WheelbaseClassMM: 450,
		BaseComputeW:     4.14, // RPi 3.39 W autopilot + Navio2 0.75 W
		HeavyComputeW:    5.31, // + SLAM active (RPi at 4.56 W)
	}
}
