package components

import (
	"math"
	"testing"

	"dronedse/mathx"
)

func TestGenerateESCCatalog(t *testing.T) {
	cat := GenerateESCCatalog(DefaultSeed)
	if len(cat) != 40 {
		t.Fatalf("catalog size = %d, want the paper's 40", len(cat))
	}
	classes := make(map[ESCClass]int)
	for _, e := range cat {
		classes[e.Class]++
		if e.MaxCurrentA < 10 || e.MaxCurrentA > 90 {
			t.Errorf("current outside survey span: %+v", e)
		}
		if e.Weight4xG < 8 {
			t.Errorf("weight below floor: %+v", e)
		}
		if e.SwitchingKHz < 60 || e.SwitchingKHz > 600 {
			t.Errorf("switching frequency outside the paper's 60-600 kHz: %+v", e)
		}
	}
	if classes[LongFlight] != 20 || classes[ShortFlight] != 20 {
		t.Errorf("class split = %v, want 20/20", classes)
	}
}

// TestFitESCCatalogReproducesFigure8a checks the two-group regression lands
// on the published lines (long: 4.9678x-15.757, short: 1.2269x+11.816).
func TestFitESCCatalogReproducesFigure8a(t *testing.T) {
	fits, err := FitESCCatalog(GenerateESCCatalog(DefaultSeed))
	if err != nil {
		t.Fatal(err)
	}
	for class, want := range Figure8aLines {
		got := fits[class]
		if !mathx.WithinRel(got.Slope, want.Slope, 0.2) {
			t.Errorf("%v slope = %v, paper %v", class, got.Slope, want.Slope)
		}
	}
	// Long-flight ESCs must be far heavier per amp than racing ESCs.
	if fits[LongFlight].Slope < 2.5*fits[ShortFlight].Slope {
		t.Errorf("long/short slope ratio too small: %v vs %v",
			fits[LongFlight].Slope, fits[ShortFlight].Slope)
	}
}

func TestESCWeightModelFloor(t *testing.T) {
	if w := ESCWeightModel(LongFlight, 1); w != 8 {
		t.Errorf("tiny ESC weight = %v, want 8 g floor", w)
	}
	if w := ESCWeightModel(LongFlight, 40); math.Abs(w-(4.9678*40-15.757)) > 1e-9 {
		t.Errorf("40 A long-flight weight = %v", w)
	}
}

func TestSelectESC(t *testing.T) {
	cat := GenerateESCCatalog(DefaultSeed)
	e, ok := SelectESC(cat, LongFlight, 25)
	if !ok {
		t.Fatal("no long-flight ESC >= 25 A")
	}
	if e.MaxCurrentA < 25 || e.Class != LongFlight {
		t.Fatalf("selection violated constraints: %+v", e)
	}
	if _, ok := SelectESC(cat, LongFlight, 1e6); ok {
		t.Error("impossible ESC requirement satisfied")
	}
}

func TestGenerateFrameCatalog(t *testing.T) {
	cat := GenerateFrameCatalog(DefaultSeed)
	if len(cat) != 25 {
		t.Fatalf("catalog size = %d, want the paper's 25", len(cat))
	}
	found := 0
	for _, f := range cat {
		if f.WeightG <= 0 || f.WheelbaseMM <= 0 {
			t.Fatalf("non-physical frame: %+v", f)
		}
		switch f.Name {
		case "Crazepony F450 (our drone)", "Tarot T960", "220 Martian II":
			found++
		}
	}
	if found != 3 {
		t.Errorf("named paper frames missing (found %d of 3)", found)
	}
}

// TestFitFrameCatalogReproducesFigure8b checks the >200 mm regression lands
// on y = 1.2767x - 167.6.
func TestFitFrameCatalogReproducesFigure8b(t *testing.T) {
	pw := FitFrameCatalog(GenerateFrameCatalog(DefaultSeed))
	if !mathx.WithinRel(pw.High.Slope, Figure8bSlope, 0.2) {
		t.Errorf("large-frame slope = %v, paper %v", pw.High.Slope, Figure8bSlope)
	}
	// Small-frame regime stays in the paper's 50<y<200 band at e.g. 150mm.
	if w := pw.Eval(150); w < 30 || w > 220 {
		t.Errorf("150 mm frame weight = %v, outside small-frame band", w)
	}
}

func TestFrameWeightModelContinuity(t *testing.T) {
	below := FrameWeightModel(Figure8bBreakMM - 1e-9)
	above := FrameWeightModel(Figure8bBreakMM)
	if math.Abs(below-above) > 1 {
		t.Errorf("discontinuity at break: %v vs %v", below, above)
	}
	if FrameWeightModel(450) <= FrameWeightModel(200) {
		t.Error("weight not increasing with wheelbase")
	}
}

func TestMaxPropellerInches(t *testing.T) {
	cases := []struct{ wb, want float64 }{
		{50, 1}, {100, 2}, {200, 5}, {450, 10}, {800, 20},
	}
	for _, c := range cases {
		if got := MaxPropellerInches(c.wb); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("MaxPropellerInches(%v) = %v, want %v (Figure 9 pairing)", c.wb, got, c.want)
		}
	}
	// interpolation is monotone
	prev := MaxPropellerInches(50)
	for wb := 60.0; wb <= 1000; wb += 10 {
		cur := MaxPropellerInches(wb)
		if cur < prev {
			t.Fatalf("prop size decreasing at %v mm", wb)
		}
		prev = cur
	}
}
