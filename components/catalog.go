package components

// Catalog bundles the full component survey the design-space exploration
// consumes: the synthesized equivalents of the paper's 250 batteries, 40
// ESCs, 25 frames and 150-manufacturer motor data, plus the Table 4 boards.
type Catalog struct {
	Batteries []Battery
	ESCs      []ESC
	Frames    []Frame
	Motors    []Motor
	Boards    []Board
}

// DefaultSeed is the deterministic seed every tool uses so that catalogs,
// fits, and figures are reproducible run to run.
const DefaultSeed int64 = 20210419 // ASPLOS '21 opening day

// NewCatalog generates the full survey with the given seed.
func NewCatalog(seed int64) *Catalog {
	return &Catalog{
		Batteries: GenerateBatteryCatalog(seed),
		ESCs:      GenerateESCCatalog(seed + 1),
		Frames:    GenerateFrameCatalog(seed + 2),
		Motors:    GenerateMotorSurvey(seed + 3),
		Boards:    Table4(),
	}
}

// Default returns the catalog at DefaultSeed.
func Default() *Catalog { return NewCatalog(DefaultSeed) }
