package components

import (
	"math"
	"testing"
)

func TestMotorWeightModelAnchors(t *testing.T) {
	// §3.1: ~5 g motors on 100 mm drones (≈100 g max thrust per motor)
	// up to ~100 g motors on 1000 mm drones (≈1500 g max thrust).
	small := MotorWeightModel(100)
	if small < 3 || small > 8 {
		t.Errorf("small motor weight = %v g, want ~5 g", small)
	}
	large := MotorWeightModel(1500)
	if large < 70 || large > 130 {
		t.Errorf("large motor weight = %v g, want ~100 g", large)
	}
	if MotorWeightModel(0) != 0 {
		t.Error("zero thrust should weigh nothing")
	}
	if MotorWeightModel(10) < 2 {
		t.Error("floor of 2 g not applied")
	}
}

func TestDesignMotorKvTrend(t *testing.T) {
	// Figure 9: small props at low voltage need extreme Kv; large props
	// at high voltage need low Kv.
	tiny := DesignMotor(100, 1, 1)
	big := DesignMotor(3000, 20, 6)
	if tiny.Kv < 10000 {
		t.Errorf("1\" 1S Kv = %v, want extreme (Figure 9a annotates 51000 Kv)", tiny.Kv)
	}
	if big.Kv > 2000 {
		t.Errorf("20\" 6S Kv = %v, want low (Figure 9d annotates 420 Kv)", big.Kv)
	}
	if tiny.Kv <= big.Kv {
		t.Error("Kv ordering violated")
	}
}

func TestDesignMotorCurrentDecreasesWithVoltage(t *testing.T) {
	// Same thrust and prop: a 6S supply draws less current than 2S
	// (Figure 9's per-voltage line ordering).
	lo := DesignMotor(800, 10, 2)
	hi := DesignMotor(800, 10, 6)
	if hi.MaxCurrentA >= lo.MaxCurrentA {
		t.Errorf("6S current %v >= 2S current %v", hi.MaxCurrentA, lo.MaxCurrentA)
	}
	ratio := lo.MaxCurrentA / hi.MaxCurrentA
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("current ratio = %v, want ~voltage ratio 3", ratio)
	}
}

func TestGenerateMotorSurvey(t *testing.T) {
	survey := GenerateMotorSurvey(DefaultSeed)
	if len(survey) != 150 {
		t.Fatalf("survey size = %d, want 150 (paper: 150 manufacturers)", len(survey))
	}
	for _, m := range survey {
		if m.Kv <= 0 || m.WeightG <= 0 || m.MaxThrustG <= 0 || m.MaxCurrentA <= 0 {
			t.Fatalf("non-physical motor: %+v", m)
		}
	}
}

func TestSelectMotor(t *testing.T) {
	survey := GenerateMotorSurvey(DefaultSeed)
	m, ok := SelectMotor(survey, 500, 10, 3)
	if !ok {
		t.Fatal("no 10\" 3S motor for 500 g thrust")
	}
	if m.MaxThrustG < 500 || m.Cells != 3 {
		t.Fatalf("selection violated constraints: %+v", m)
	}
	if _, ok := SelectMotor(survey, 1e9, 10, 3); ok {
		t.Error("impossible motor requirement satisfied")
	}
}

func TestPropellerWeight(t *testing.T) {
	if PropellerWeightG(1) < 0.5 {
		t.Error("floor not applied")
	}
	if PropellerWeightG(10) <= PropellerWeightG(5) {
		t.Error("prop weight not increasing")
	}
	w20 := PropellerWeightG(20)
	if w20 < 15 || w20 > 60 {
		t.Errorf("20\" prop weight = %v g, implausible", w20)
	}
}

func TestTable4(t *testing.T) {
	rows := Table4()
	if len(rows) != 15 {
		t.Fatalf("Table 4 rows = %d, want 15", len(rows))
	}
	b, ok := FindBoard("Nvidia Jetson TX2")
	if !ok {
		t.Fatal("TX2 missing")
	}
	if b.PowerW != 10 || b.WeightG != 85 {
		t.Errorf("TX2 = %+v, want 10 W / 85 g", b)
	}
	if _, ok := FindBoard("nonexistent"); ok {
		t.Error("found nonexistent board")
	}
	for _, r := range rows {
		if r.Class == LiDARUnit && !r.SelfPowered {
			t.Errorf("LiDAR %s must be self-powered per §3.1", r.Name)
		}
		if r.WeightG <= 0 || r.PowerW <= 0 {
			t.Errorf("non-physical row: %+v", r)
		}
	}
}

func TestComputeTiers(t *testing.T) {
	if BasicComputeTier.PowerW != 3 || AdvancedComputeTier.PowerW != 20 {
		t.Error("compute tiers must be the paper's 3 W and 20 W levels")
	}
}

func TestCommercialDrones(t *testing.T) {
	drones := CommercialDrones()
	if len(drones) < 9 {
		t.Fatalf("validation set too small: %d", len(drones))
	}
	for _, d := range drones {
		hp := d.HoverPowerW()
		if hp <= 0 {
			t.Fatalf("%s: hover power %v", d.Name, hp)
		}
		if d.ManeuverPowerW() <= hp {
			t.Errorf("%s: maneuvering should draw more than hovering", d.Name)
		}
		base, heavy := d.BaseComputeSharePct(), d.HeavyComputeSharePct()
		if heavy <= base {
			t.Errorf("%s: heavy compute share %v <= base %v", d.Name, heavy, base)
		}
	}
}

// TestFigure11Shares checks Figure 11's claims: hovering compute is 2-7% of
// total power and heavy computation reaches 10-20% on small drones.
func TestFigure11Shares(t *testing.T) {
	var anyHeavyAbove10 bool
	for _, d := range Figure11Drones() {
		base := d.BaseComputeSharePct()
		if base < 1 || base > 9 {
			t.Errorf("%s: base compute share %.1f%%, want the paper's 2-7%% band (±2)", d.Name, base)
		}
		heavy := d.HeavyComputeSharePct()
		if heavy < 5 || heavy > 25 {
			t.Errorf("%s: heavy compute share %.1f%%, want ~10-20%% band (±5)", d.Name, heavy)
		}
		if heavy >= 10 {
			anyHeavyAbove10 = true
		}
	}
	if !anyHeavyAbove10 {
		t.Error("no drone reaches the 10-20% heavy-compute band")
	}
}

func TestOurDroneBreakdown(t *testing.T) {
	items := OurDroneBreakdown()
	if len(items) != 13 {
		t.Fatalf("breakdown items = %d, want Figure 14's 13", len(items))
	}
	if items[0].Name != "Frame" || items[0].WeightG != 272 {
		t.Errorf("first item = %+v, want Frame 272 g", items[0])
	}
	total := OurDroneTotalWeightG()
	if math.Abs(total-1071) > 1 {
		t.Errorf("total = %v g, want 1071 g", total)
	}
	// Frame+battery+motors+ESC dominate (paper: 25+23+21+10 = 79%).
	top4 := items[0].WeightG + items[1].WeightG + items[2].WeightG + items[3].WeightG
	if share := top4 / total; share < 0.75 || share > 0.85 {
		t.Errorf("top-4 share = %v, want ~0.79", share)
	}
}

func TestCatalog(t *testing.T) {
	c := Default()
	if len(c.Batteries) != 250 || len(c.ESCs) != 40 || len(c.Frames) != 25 || len(c.Motors) != 150 {
		t.Errorf("catalog sizes wrong: %d/%d/%d/%d", len(c.Batteries), len(c.ESCs), len(c.Frames), len(c.Motors))
	}
	if len(c.Boards) == 0 {
		t.Error("boards missing")
	}
}
