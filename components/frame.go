package components

import (
	"fmt"
	"math/rand"

	"dronedse/fit"
)

// Frame is one commercial quadcopter frame product.
type Frame struct {
	Name string
	// WheelbaseMM is the diagonal motor-to-motor distance (Table 3).
	WheelbaseMM float64
	// WeightG is the bare frame weight in grams.
	WeightG float64
}

// Figure8b publishes the frame weight model: y = 1.2767x - 167.6 for
// wheelbase x > 200 mm; below 200 mm frames sit in a flat 50-200 g band.
const (
	Figure8bSlope     = 1.2767
	Figure8bIntercept = -167.6
	// Figure8bBreakMM is the wheelbase where the regimes split.
	Figure8bBreakMM = 200.0
)

// FrameWeightModel predicts frame weight in grams from wheelbase in mm,
// using the published large-frame line above the break and a gentle ramp
// through the paper's 50-200 g small-frame band below it.
func FrameWeightModel(wheelbaseMM float64) float64 {
	if wheelbaseMM >= Figure8bBreakMM {
		return Figure8bSlope*wheelbaseMM + Figure8bIntercept
	}
	// Small frames: ~30 g at 50 mm rising to the ~88 g the big-frame line
	// gives at the 200 mm break, inside the paper's 50 < y < 200 band.
	atBreak := Figure8bSlope*Figure8bBreakMM + Figure8bIntercept
	t := (wheelbaseMM - 50) / (Figure8bBreakMM - 50)
	if t < 0 {
		t = 0
	}
	return 30 + t*(atBreak-30)
}

// namedFrames are the products called out in Figure 8b.
var namedFrames = []Frame{
	{Name: "220 Martian II", WheelbaseMM: 220, WeightG: 125},
	{Name: "iFlight BumbleBee", WheelbaseMM: 142, WeightG: 128},
	{Name: "Crazepony F450 (our drone)", WheelbaseMM: 450, WeightG: 272},
	{Name: "Readytosky S500", WheelbaseMM: 500, WeightG: 405},
	{Name: "Tarot T960", WheelbaseMM: 960, WeightG: 1005},
}

var frameVendors = []string{
	"GEPRC", "Armattan", "TBS", "Diatone", "HGLRC", "Flywoo", "Tarot",
	"Lumenier", "ImpulseRC", "Source",
}

// GenerateFrameCatalog returns a deterministic 25-frame catalog (Figure 8b):
// the five named products plus 20 synthesized frames spanning 65-1000 mm
// scattered around the weight model.
func GenerateFrameCatalog(seed int64) []Frame {
	r := rand.New(rand.NewSource(seed))
	out := append([]Frame(nil), namedFrames...)
	for i := 0; i < 20; i++ {
		// First five fill the sparse small-frame region; the rest span
		// the large-frame regime, mirroring the survey's coverage.
		var wb float64
		if i < 5 {
			wb = 65 + r.Float64()*130
		} else {
			wb = 200 + r.Float64()*800
		}
		wb = float64(int(wb/5)) * 5
		w := FrameWeightModel(wb) * (1 + 0.08*r.NormFloat64())
		if w < 20 {
			w = 20
		}
		out = append(out, Frame{
			Name:        fmt.Sprintf("%s %0.0fmm", frameVendors[r.Intn(len(frameVendors))], wb),
			WheelbaseMM: wb,
			WeightG:     w,
		})
	}
	return out
}

// FitFrameCatalog reproduces Figure 8b's extraction: a piecewise fit with the
// paper's 200 mm break.
func FitFrameCatalog(frames []Frame) fit.Piecewise2 {
	pts := make([]fit.Point, len(frames))
	for i, f := range frames {
		pts[i] = fit.Point{X: f.WheelbaseMM, Y: f.WeightG}
	}
	return fit.FitPiecewise2(pts, Figure8bBreakMM)
}

// MaxPropellerInches returns the largest propeller diameter (inches) a frame
// wheelbase supports, per the Figure 9 pairings (50 mm-1", 100 mm-2",
// 200 mm-5", 450 mm-10", 800 mm-20"); intermediate wheelbases interpolate
// on the same geometric proportionality.
func MaxPropellerInches(wheelbaseMM float64) float64 {
	return fit.Interp1Sorted(propellerAnchors, wheelbaseMM)
}

// propellerAnchors is the wheelbase→propeller pairing table, sorted by X so
// the per-Resolve lookup allocates nothing.
var propellerAnchors = []fit.Point{{X: 50, Y: 1}, {X: 100, Y: 2}, {X: 200, Y: 5}, {X: 450, Y: 10}, {X: 800, Y: 20}, {X: 1000, Y: 24}}
