package components

import (
	"fmt"
	"math"
	"math/rand"

	"dronedse/propulsion"
	"dronedse/units"
)

// Motor is one commercial BLDC motor product, characterized the way
// manufacturer thrust tables do: at a reference propeller and pack voltage.
type Motor struct {
	Name         string
	Manufacturer string
	// Kv is the velocity constant in RPM/V (Table 3).
	Kv float64
	// WeightG is the weight of one motor in grams.
	WeightG float64
	// PropInches is the reference propeller diameter.
	PropInches float64
	// Cells is the reference supply (battery cell count).
	Cells int
	// MaxThrustG is the maximum thrust (gram-force) at the reference
	// propeller and voltage.
	MaxThrustG float64
	// MaxCurrentA is the current draw at maximum thrust.
	MaxCurrentA float64
}

// MotorWeightModel predicts the weight (g) of one motor able to produce
// maxThrustG of thrust. The fit is anchored on the paper's observation that
// motors span ~5 g on 100 mm drones to ~100 g on 1000 mm drones (§3.1):
// w = 0.0307 * T^1.106. Larger low-Kv motors for big props carry more poles
// and copper, which the exponent captures.
func MotorWeightModel(maxThrustG float64) float64 {
	if maxThrustG <= 0 {
		return 0
	}
	w := 0.0307 * math.Pow(maxThrustG, 1.106)
	if w < 2 {
		w = 2
	}
	return w
}

// DesignMotor synthesizes the best-matching motor for a required maximum
// thrust per motor (gram-force), a propeller diameter, and a pack cell
// count, using the propulsion physics for Kv and current. This is the
// "choose the best matching motor from data released by 150 manufacturers"
// step of §3.1.
func DesignMotor(maxThrustG, propInches float64, cells int) Motor {
	v := units.CellsToVoltage(cells)
	d := units.InchToMeter(propInches)
	tN := units.GramsToNewtons(maxThrustG)
	eff := propulsion.DefaultEfficiencies()
	return Motor{
		Name:        fmt.Sprintf("synthetic %0.0fKv %0.0f\"", propulsion.KvForDesign(tN, d, v), propInches),
		Kv:          propulsion.KvForDesign(tN, d, v),
		WeightG:     MotorWeightModel(maxThrustG),
		PropInches:  propInches,
		Cells:       cells,
		MaxThrustG:  maxThrustG,
		MaxCurrentA: propulsion.MotorCurrent(tN, d, v, eff),
	}
}

var motorVendors = []string{
	"T-Motor", "EMAX", "iFlight", "BrotherHobby", "SunnySky", "Cobra",
	"DYS", "RCTimer", "Tarot", "XING", "Hypetrain", "Lumenier", "AOKFly",
	"Racerstar", "Flash Hobby",
}

// GenerateMotorSurvey synthesizes the motor dataset of Figure 9: products
// from (nominally) 150 manufacturers across the five wheelbase classes and
// all six supply voltages. Each entry perturbs the physics-designed motor
// the way real product lines scatter around the trend.
func GenerateMotorSurvey(seed int64) []Motor {
	r := rand.New(rand.NewSource(seed))
	classes := []struct {
		prop      float64
		minThrust float64 // gram-force per motor at TWR=2
		maxThrust float64
	}{
		{1, 30, 300},
		{2, 60, 600},
		{5, 150, 1200},
		{10, 300, 2500},
		{20, 800, 6000},
	}
	var out []Motor
	id := 0
	for _, c := range classes {
		for cells := 1; cells <= 6; cells++ {
			for k := 0; k < 5; k++ { // 5 products per class/voltage
				t := c.minThrust + r.Float64()*(c.maxThrust-c.minThrust)
				m := DesignMotor(t, c.prop, cells)
				m.Manufacturer = motorVendors[id%len(motorVendors)]
				m.Name = fmt.Sprintf("%s %0.0fKv-%d", m.Manufacturer, m.Kv, id)
				m.WeightG *= 1 + 0.08*r.NormFloat64()
				m.MaxCurrentA *= 1 + 0.05*r.NormFloat64()
				m.Kv *= 1 + 0.05*r.NormFloat64()
				out = append(out, m)
				id++
			}
		}
	}
	return out
}

// SelectMotor returns the catalog motor best matching a thrust requirement
// (lightest motor whose reference prop/cells match and whose MaxThrustG
// meets the requirement), or ok=false.
func SelectMotor(survey []Motor, requiredThrustG, propInches float64, cells int) (Motor, bool) {
	best := Motor{}
	found := false
	for _, m := range survey {
		if m.Cells != cells || math.Abs(m.PropInches-propInches) > 0.51 || m.MaxThrustG < requiredThrustG {
			continue
		}
		if !found || m.WeightG < best.WeightG {
			best, found = m, true
		}
	}
	return best, found
}

// PropellerWeightG estimates the weight (g) of one propeller of the given
// diameter in inches: ~1 g for 1" micro props up to ~25 g for 20" lifters.
func PropellerWeightG(propInches float64) float64 {
	w := 0.35*propInches*propInches*0.25 + 0.6*propInches
	if w < 0.5 {
		w = 0.5
	}
	return w
}
