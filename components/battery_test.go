package components

import (
	"math"
	"testing"

	"dronedse/mathx"
)

func TestGenerateBatteryCatalogSize(t *testing.T) {
	cat := GenerateBatteryCatalog(DefaultSeed)
	if len(cat) != 250 {
		t.Fatalf("catalog size = %d, want the paper's 250", len(cat))
	}
	perCells := make(map[int]int)
	for _, b := range cat {
		perCells[b.Cells]++
		if b.CapacityMah <= 0 || b.WeightG <= 0 {
			t.Fatalf("non-physical battery: %+v", b)
		}
		if b.Cells < 1 || b.Cells > 6 {
			t.Fatalf("cell count out of range: %+v", b)
		}
		if b.DischargeC < 20 || b.DischargeC > 120 {
			t.Fatalf("C rating out of survey range: %+v", b)
		}
	}
	for c := 1; c <= 6; c++ {
		if perCells[c] < 30 {
			t.Errorf("only %d batteries with %dS; want a balanced survey", perCells[c], c)
		}
	}
}

func TestBatteryCatalogDeterministic(t *testing.T) {
	a := GenerateBatteryCatalog(7)
	b := GenerateBatteryCatalog(7)
	if len(a) != len(b) {
		t.Fatal("catalog size differs between runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestFitBatteryCatalogReproducesFigure7 is the Figure 7 reproduction: the
// per-configuration regressions over the synthesized survey must land on the
// paper's published lines.
func TestFitBatteryCatalogReproducesFigure7(t *testing.T) {
	cat := GenerateBatteryCatalog(DefaultSeed)
	fits, err := FitBatteryCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	for cells, want := range Figure7Lines {
		got, ok := fits[cells]
		if !ok {
			t.Fatalf("no fit for %dS", cells)
		}
		if !mathx.WithinRel(got.Slope, want.Slope, 0.15) {
			t.Errorf("%dS slope = %v, paper %v", cells, got.Slope, want.Slope)
		}
		if got.R2 < 0.8 {
			t.Errorf("%dS fit R2 = %v; survey should be strongly linear", cells, got.R2)
		}
	}
}

func TestBatteryWeightModelMonotonic(t *testing.T) {
	for cells := 1; cells <= 6; cells++ {
		prev := BatteryWeightModel(cells, 500)
		for cap := 1000.0; cap <= 10000; cap += 500 {
			w := BatteryWeightModel(cells, cap)
			if w <= prev {
				t.Fatalf("%dS weight not increasing at %v mAh", cells, cap)
			}
			prev = w
		}
	}
	// clamping
	if BatteryWeightModel(0, 1000) != BatteryWeightModel(1, 1000) {
		t.Error("cells<1 not clamped")
	}
	if BatteryWeightModel(9, 1000) != BatteryWeightModel(6, 1000) {
		t.Error("cells>6 not clamped")
	}
}

func TestBatteryDerivedQuantities(t *testing.T) {
	b := Battery{Cells: 3, CapacityMah: 3000, DischargeC: 20}
	if math.Abs(b.Voltage()-11.1) > 1e-9 {
		t.Errorf("Voltage = %v", b.Voltage())
	}
	if math.Abs(b.EnergyWh()-33.3) > 1e-9 {
		t.Errorf("EnergyWh = %v", b.EnergyWh())
	}
	if math.Abs(b.MaxContinuousCurrentA()-60) > 1e-9 {
		t.Errorf("MaxContinuousCurrentA = %v", b.MaxContinuousCurrentA())
	}
}

func TestSelectBattery(t *testing.T) {
	cat := GenerateBatteryCatalog(DefaultSeed)
	b, ok := SelectBattery(cat, 3, 3000)
	if !ok {
		t.Fatal("no 3S >= 3000 mAh battery in a 250-product survey")
	}
	if b.Cells != 3 || b.CapacityMah < 3000 {
		t.Fatalf("selection violated constraints: %+v", b)
	}
	for _, other := range cat {
		if other.Cells == 3 && other.CapacityMah >= 3000 && other.WeightG < b.WeightG {
			t.Fatalf("not the lightest: %+v beats %+v", other, b)
		}
	}
	if _, ok := SelectBattery(cat, 6, 1e9); ok {
		t.Error("impossible requirement satisfied")
	}
}
