package components

import "dronedse/units"

// CommercialDrone is a released product used to validate the model, as in
// Figures 10 and 11 ("We validate our data by adding commercial drone data
// using the released flight times and battery configurations"). Power is not
// published by vendors; like the paper, it is derived from usable battery
// energy over rated flight time.
type CommercialDrone struct {
	Name string
	// TakeoffWeightG is the all-up weight in grams.
	TakeoffWeightG float64
	// BatteryWh is the rated battery energy in watt-hours.
	BatteryWh float64
	// Cells is the battery's series cell count.
	Cells int
	// RatedFlightMin is the manufacturer's hovering flight time in
	// minutes.
	RatedFlightMin float64
	// WheelbaseClassMM maps the product onto the nearest studied
	// wheelbase sweep (100/450/800 mm).
	WheelbaseClassMM float64
	// BaseComputeW is the estimated light-compute (video pipeline +
	// control) electronics power.
	BaseComputeW float64
	// HeavyComputeW is the estimated electronics power under heavy
	// computation (SLAM-class workloads, recognition, HD recording);
	// §5.1 measures ~+1.2-2 W for SLAM-class load on an RPi.
	HeavyComputeW float64
}

// HoverPowerW derives average hover power from the usable battery energy
// (85% drain limit) over the rated flight time.
func (d CommercialDrone) HoverPowerW() float64 {
	if d.RatedFlightMin <= 0 {
		return 0
	}
	return d.BatteryWh * units.LiPoDrainLimit / (d.RatedFlightMin / 60)
}

// ManeuverPowerW scales hover power by the flying-load ratio: the paper's
// whole-drone trace (Figure 16b) shows power tracks the current load nearly
// linearly (130 W at 30% load to 250 W at 58%).
func (d CommercialDrone) ManeuverPowerW() float64 {
	return d.HoverPowerW() * (0.58 / 0.30)
}

// HeavyComputeSharePct is Figure 11's yellow line: the share of total hover
// power consumed when the electronics run heavy computation.
func (d CommercialDrone) HeavyComputeSharePct() float64 {
	p := d.HoverPowerW()
	if p <= 0 {
		return 0
	}
	return 100 * d.HeavyComputeW / p
}

// BaseComputeSharePct is the light-compute share of hover power (paper:
// 2-7% when hovering).
func (d CommercialDrone) BaseComputeSharePct() float64 {
	p := d.HoverPowerW()
	if p <= 0 {
		return 0
	}
	return 100 * d.BaseComputeW / p
}

// CommercialDrones returns the validation set used across Figures 10 and 11,
// with published weights, battery energies, and rated flight times.
func CommercialDrones() []CommercialDrone {
	return []CommercialDrone{
		{Name: "Parrot Mambo", TakeoffWeightG: 63, BatteryWh: 2.4, Cells: 1, RatedFlightMin: 8, WheelbaseClassMM: 100, BaseComputeW: 0.5, HeavyComputeW: 1.8},
		{Name: "Parrot Anafi", TakeoffWeightG: 320, BatteryWh: 20.9, Cells: 2, RatedFlightMin: 25, WheelbaseClassMM: 100, BaseComputeW: 1.2, HeavyComputeW: 3.6},
		{Name: "DJI Spark", TakeoffWeightG: 300, BatteryWh: 16.9, Cells: 3, RatedFlightMin: 16, WheelbaseClassMM: 100, BaseComputeW: 1.5, HeavyComputeW: 4.8},
		{Name: "DJI Mavic Air", TakeoffWeightG: 430, BatteryWh: 27.4, Cells: 3, RatedFlightMin: 21, WheelbaseClassMM: 450, BaseComputeW: 2.0, HeavyComputeW: 6.5},
		{Name: "Parrot Bebop 2", TakeoffWeightG: 500, BatteryWh: 30.0, Cells: 3, RatedFlightMin: 25, WheelbaseClassMM: 450, BaseComputeW: 1.8, HeavyComputeW: 5.5},
		{Name: "SKYDIO 2", TakeoffWeightG: 775, BatteryWh: 45.6, Cells: 4, RatedFlightMin: 23, WheelbaseClassMM: 450, BaseComputeW: 4.0, HeavyComputeW: 13.0},
		{Name: "DJI MAVIC", TakeoffWeightG: 734, BatteryWh: 43.6, Cells: 3, RatedFlightMin: 27, WheelbaseClassMM: 450, BaseComputeW: 2.0, HeavyComputeW: 6.0},
		{Name: "DJI Phantom 4", TakeoffWeightG: 1380, BatteryWh: 81.3, Cells: 4, RatedFlightMin: 28, WheelbaseClassMM: 450, BaseComputeW: 3.0, HeavyComputeW: 8.0},
		{Name: "DJI MATRICE", TakeoffWeightG: 2355, BatteryWh: 99.9, Cells: 6, RatedFlightMin: 22, WheelbaseClassMM: 800, BaseComputeW: 5.0, HeavyComputeW: 12.0},
	}
}

// Figure11Drones returns the six small commercial drones of Figure 11 in the
// paper's plotting order.
func Figure11Drones() []CommercialDrone {
	order := []string{
		"Parrot Mambo", "Parrot Anafi", "DJI Spark",
		"DJI Mavic Air", "Parrot Bebop 2", "SKYDIO 2",
	}
	all := CommercialDrones()
	byName := make(map[string]CommercialDrone, len(all))
	for _, d := range all {
		byName[d.Name] = d
	}
	out := make([]CommercialDrone, 0, len(order))
	for _, n := range order {
		out = append(out, byName[n])
	}
	return out
}
