package sim

import (
	"math"
	"math/rand"

	"dronedse/mathx"
)

// Environment models the unpredictable effects Table 1 assigns to the inner
// loop: steady wind, gusts, and atmospheric turbulence.
type Environment struct {
	// MeanWind is the steady wind vector (m/s, world frame).
	MeanWind mathx.Vec3
	// GustAmplitude scales sinusoidal gusts layered on the mean.
	GustAmplitude float64
	// GustPeriodS is the dominant gust period.
	GustPeriodS float64
	// TurbulenceStd is the standard deviation of the random turbulence
	// component (m/s).
	TurbulenceStd float64
	// GustOffset is an externally-injected wind step (m/s, world frame)
	// added on top of the modeled wind. Fault injectors drive it to apply
	// deterministic gust-step events; zero leaves the wind untouched.
	GustOffset mathx.Vec3

	rng  *rand.Rand
	turb mathx.Vec3
}

// NewEnvironment returns calm air with a deterministic turbulence source.
func NewEnvironment(seed int64) *Environment {
	return &Environment{GustPeriodS: 7, rng: rand.New(rand.NewSource(seed))}
}

// WindyEnvironment returns a gusty test condition: steady wind with gusts
// and turbulence, used by the INDI-style disturbance tests (§2.1.3-D cites
// stabilization under powerful wind gusts at a 500 Hz loop).
func WindyEnvironment(seed int64, meanMS, gustMS float64) *Environment {
	e := NewEnvironment(seed)
	e.MeanWind = mathx.V3(meanMS, 0, 0)
	e.GustAmplitude = gustMS
	e.TurbulenceStd = gustMS / 4
	return e
}

// WindAt returns the wind vector at simulated time t. The turbulence term is
// a first-order random walk refreshed on each call, so callers should sample
// at a consistent rate (the simulator's Step does).
func (e *Environment) WindAt(t float64) mathx.Vec3 {
	w := e.MeanWind
	if e.GustAmplitude != 0 && e.GustPeriodS > 0 {
		phase := 2 * math.Pi * t / e.GustPeriodS
		w = w.Add(mathx.V3(
			e.GustAmplitude*math.Sin(phase),
			e.GustAmplitude*0.5*math.Sin(1.7*phase+1),
			e.GustAmplitude*0.2*math.Sin(2.3*phase+2)))
	}
	if e.TurbulenceStd > 0 {
		e.turb = e.turb.Scale(0.98).Add(mathx.V3(
			e.rng.NormFloat64(), e.rng.NormFloat64(), e.rng.NormFloat64()).
			Scale(e.TurbulenceStd * 0.2))
		w = w.Add(e.turb)
	}
	if e.GustOffset != (mathx.Vec3{}) {
		w = w.Add(e.GustOffset)
	}
	return w
}
