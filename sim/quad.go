// Package sim is a 6-DOF rigid-body quadcopter simulator: the physical plant
// under the paper's control stack (§2.1). It supplies the "physical response
// time and inertia" that — per §2.1.3-D — limits the inner loop to 50-500 Hz
// regardless of compute, and it produces the whole-drone power signal behind
// Figure 16b.
//
// Conventions: ENU world frame (Z up), body frame X forward / Y left / Z up,
// attitude quaternion rotates body vectors into the world frame. Motors sit
// in an X configuration.
package sim

import (
	"errors"
	"math"

	"dronedse/mathx"
	"dronedse/propulsion"
	"dronedse/units"
)

// Motor indices of the X configuration.
const (
	FrontLeft = iota
	FrontRight
	BackLeft
	BackRight
	NumMotors
)

// State is the drone's measurable state: x = (position, velocity, angular
// velocity, attitude) exactly as §2.1.3-D defines it.
type State struct {
	Pos   mathx.Vec3 // m, world ENU
	Vel   mathx.Vec3 // m/s, world
	Omega mathx.Vec3 // rad/s, body frame
	Att   mathx.Quat // body -> world
}

// Config sizes a quadcopter plant.
type Config struct {
	MassKg      float64
	WheelbaseMM float64
	PropInches  float64
	// TWR is the design thrust-to-weight ratio used to size the rotors.
	TWR float64
	// DragCoef is the quadratic body drag coefficient (N per (m/s)^2).
	DragCoef float64
	// Eff is the propulsion efficiency chain for power accounting.
	Eff propulsion.Efficiencies
}

// DefaultConfig is the paper's open-source 450 mm drone: ~1.07 kg, 10"
// propellers, TWR 2.
func DefaultConfig() Config {
	return Config{
		MassKg:      1.071,
		WheelbaseMM: 450,
		PropInches:  10,
		TWR:         2,
		DragCoef:    0.02, // ~23 m/s terminal velocity

		Eff: propulsion.Efficiencies{FigureOfMerit: 0.60, Motor: 0.80, ESC: 0.93},
	}
}

// Quad is the stateful plant.
type Quad struct {
	cfg     Config
	rotor   propulsion.Rotor
	armM    float64 // moment arm of each motor along body x/y
	inertia mathx.Vec3
	propD   float64

	state State
	// thrustN is each rotor's present thrust; rotor spin-up is a
	// first-order lag toward the commanded thrust.
	thrustN [NumMotors]float64
	cmdN    [NumMotors]float64

	// powerW caches ElectricalPowerW between thrust changes. The power
	// model costs four math.Pow calls, and the autopilot, trace recorder,
	// and scenario probe all read it every step — caching collapses that
	// to one evaluation per Step without changing a single returned bit.
	powerW     float64
	powerDirty bool

	env      *Environment
	onGround bool
	failed   [NumMotors]bool
	// eff derates each rotor's commanded thrust (1 = healthy). Partial
	// thrust loss — a chipped prop, a sagging ESC — sits between healthy
	// and the binary FailMotor, and fault injectors drive it over time.
	eff [NumMotors]float64
	// payloadKg is carried mass attached mid-flight (package delivery); it
	// adds to the airframe mass in the translational dynamics but not to the
	// design-derived thrust ceilings, which belong to the airframe.
	payloadKg float64
	t         float64
}

// NewQuad builds the plant from a config.
func NewQuad(cfg Config) (*Quad, error) {
	if cfg.MassKg <= 0 || cfg.WheelbaseMM <= 0 || cfg.PropInches <= 0 {
		return nil, errors.New("sim: non-physical config")
	}
	if cfg.TWR < 1.2 {
		return nil, errors.New("sim: TWR below flying minimum")
	}
	maxThrustPerMotor := cfg.TWR * cfg.MassKg * units.Gravity / 4
	wbM := cfg.WheelbaseMM / 1000
	q := &Quad{
		cfg:   cfg,
		rotor: propulsion.DesignRotor(units.InchToMeter(cfg.PropInches), maxThrustPerMotor),
		armM:  wbM / 2 * math.Sqrt2 / 2,
		inertia: mathx.V3(
			0.05*cfg.MassKg*wbM*wbM,
			0.05*cfg.MassKg*wbM*wbM,
			0.09*cfg.MassKg*wbM*wbM),
		propD:    units.InchToMeter(cfg.PropInches),
		env:      NewEnvironment(0),
		onGround: true,
	}
	q.state.Att = mathx.QuatIdentity()
	q.powerDirty = true
	for i := range q.eff {
		q.eff[i] = 1
	}
	return q, nil
}

// SetEnvironment installs a wind/gust model.
func (q *Quad) SetEnvironment(env *Environment) { q.env = env }

// State returns a copy of the current true state.
func (q *Quad) State() State { return q.state }

// Time returns simulated seconds since start.
func (q *Quad) Time() float64 { return q.t }

// OnGround reports whether the drone is resting on the ground.
func (q *Quad) OnGround() bool { return q.onGround }

// Config returns the plant's configuration.
func (q *Quad) Config() Config { return q.cfg }

// MaxThrustPerMotorN is the rotor thrust ceiling.
func (q *Quad) MaxThrustPerMotorN() float64 {
	return q.cfg.TWR * q.cfg.MassKg * units.Gravity / 4
}

// HoverThrustPerMotorN is the per-motor thrust that balances weight.
func (q *Quad) HoverThrustPerMotorN() float64 {
	return q.cfg.MassKg * units.Gravity / 4
}

// RotorTimeConstant exposes the physical actuation lag (the §2.1.3-D
// response-time floor).
func (q *Quad) RotorTimeConstant() float64 { return q.rotor.TimeConstant }

// SetPayloadKg attaches (or, at 0, releases) a carried payload. The mass is
// felt by the dynamics from the next step; negative values clamp to zero.
// With no payload the plant's arithmetic is bit-identical to a payload-less
// build, so flights that never carry mass are unaffected.
func (q *Quad) SetPayloadKg(kg float64) {
	if kg < 0 {
		kg = 0
	}
	q.payloadKg = kg
}

// PayloadKg reports the currently carried payload mass.
func (q *Quad) PayloadKg() float64 { return q.payloadKg }

// massKg is the total translational mass: airframe plus carried payload.
func (q *Quad) massKg() float64 { return q.cfg.MassKg + q.payloadKg }

// FailMotor injects a motor/ESC failure: motor i produces no thrust until
// repaired. Failure injection exercises the autopilot's crash detection.
func (q *Quad) FailMotor(i int) {
	if i >= 0 && i < NumMotors {
		q.failed[i] = true
	}
}

// RepairMotor clears an injected failure.
func (q *Quad) RepairMotor(i int) {
	if i >= 0 && i < NumMotors {
		q.failed[i] = false
	}
}

// MotorFailed reports whether motor i is failed.
func (q *Quad) MotorFailed(i int) bool { return i >= 0 && i < NumMotors && q.failed[i] }

// SetMotorEfficiency derates motor i to the given thrust fraction in [0, 1]
// (1 restores full health). Unlike FailMotor it models partial thrust loss;
// the commanded thrust is scaled before the spin-up lag.
func (q *Quad) SetMotorEfficiency(i int, frac float64) {
	if i >= 0 && i < NumMotors {
		q.eff[i] = mathx.Clamp(frac, 0, 1)
	}
}

// MotorEfficiency returns motor i's present thrust derate (1 = healthy).
func (q *Quad) MotorEfficiency(i int) float64 {
	if i < 0 || i >= NumMotors {
		return 0
	}
	return q.eff[i]
}

// Teleport places the drone at rest at a position (test/scenario setup):
// velocities zero, attitude level, rotors pre-spun to hover thrust so a
// hovering controller takes over smoothly.
func (q *Quad) Teleport(pos mathx.Vec3) {
	q.state = State{Pos: pos, Att: mathx.QuatIdentity()}
	hover := q.HoverThrustPerMotorN()
	for i := range q.thrustN {
		q.thrustN[i] = hover
		q.cmdN[i] = hover
	}
	q.powerDirty = true
	q.onGround = pos.Z <= 0
}

// CommandThrusts sets the commanded per-motor thrusts in newtons, clamped to
// [0, max].
func (q *Quad) CommandThrusts(n [NumMotors]float64) {
	max := q.MaxThrustPerMotorN()
	for i, v := range n {
		q.cmdN[i] = mathx.Clamp(v, 0, max)
	}
}

// MotorThrusts returns the present rotor thrusts.
func (q *Quad) MotorThrusts() [NumMotors]float64 { return q.thrustN }

// ElectricalPowerW returns the present propulsion electrical power draw.
// The value is computed once per thrust change and cached, so the several
// per-step consumers (autopilot ledger, trace recorder, scenario probe) share
// one evaluation of the math.Pow-heavy rotor power model.
func (q *Quad) ElectricalPowerW() float64 {
	if q.powerDirty {
		p := 0.0
		for _, tN := range q.thrustN {
			p += propulsion.ElectricalPower(tN, q.propD, q.cfg.Eff)
		}
		q.powerW = p
		q.powerDirty = false
	}
	return q.powerW
}

// CurrentLoadFraction is the present total thrust over the TWR maximum — the
// "FlyingLoad" axis of §3.2 (hover ≈ 0.25-0.35, maneuvers 0.6+).
func (q *Quad) CurrentLoadFraction() float64 {
	sum := 0.0
	for _, tN := range q.thrustN {
		sum += tN
	}
	return sum / (4 * q.MaxThrustPerMotorN())
}

// yaw spin directions: diagonal pairs share a direction.
var spinSign = [NumMotors]float64{+1, -1, -1, +1}

// motor (x, y) body positions in units of the moment arm.
var motorX = [NumMotors]float64{+1, +1, -1, -1}
var motorY = [NumMotors]float64{+1, -1, +1, -1}

// Step advances the simulation by dt seconds (call at >= the inner-loop
// rate; 1 kHz is the reference).
func (q *Quad) Step(dt float64) {
	if dt <= 0 {
		return
	}
	q.t += dt

	// Rotor spin-up lag (first-order in thrust); failed motors spin down.
	alpha := dt / (q.rotor.TimeConstant + dt)
	for i := range q.thrustN {
		cmd := q.cmdN[i]
		if q.eff[i] != 1 {
			cmd *= q.eff[i]
		}
		if q.failed[i] {
			cmd = 0
		}
		q.thrustN[i] += alpha * (cmd - q.thrustN[i])
	}
	q.powerDirty = true

	// Forces.
	totalThrust := 0.0
	for _, tN := range q.thrustN {
		totalThrust += tN
	}
	thrustWorld := q.state.Att.Rotate(mathx.V3(0, 0, totalThrust))
	m := q.massKg()
	gravity := mathx.V3(0, 0, -m*units.Gravity)
	air := q.env.WindAt(q.t).Sub(q.state.Vel) // air velocity relative to body
	drag := air.Scale(q.cfg.DragCoef * air.Norm())
	force := thrustWorld.Add(gravity).Add(drag)
	accel := force.Scale(1 / m)

	// Torques: r x F per motor plus yaw reaction, plus rotational damping.
	var tau mathx.Vec3
	c := q.rotor.KQ / q.rotor.KT // torque per thrust
	for i, tN := range q.thrustN {
		tau.X += motorY[i] * q.armM * tN
		tau.Y += -motorX[i] * q.armM * tN
		tau.Z += spinSign[i] * c * tN
	}
	tau = tau.Sub(q.state.Omega.Scale(0.01 * m)) // aero damping
	iw := q.state.Omega.Hadamard(q.inertia)
	domega := mathx.V3(
		(tau.X-(q.state.Omega.Y*iw.Z-q.state.Omega.Z*iw.Y))/q.inertia.X,
		(tau.Y-(q.state.Omega.Z*iw.X-q.state.Omega.X*iw.Z))/q.inertia.Y,
		(tau.Z-(q.state.Omega.X*iw.Y-q.state.Omega.Y*iw.X))/q.inertia.Z,
	)

	// Integrate (semi-implicit Euler).
	q.state.Vel = q.state.Vel.Add(accel.Scale(dt))
	q.state.Pos = q.state.Pos.Add(q.state.Vel.Scale(dt))
	q.state.Omega = q.state.Omega.Add(domega.Scale(dt))
	q.state.Att = q.state.Att.Integrate(q.state.Omega, dt)

	// Ground contact.
	if q.state.Pos.Z <= 0 {
		q.state.Pos.Z = 0
		if q.state.Vel.Z < 0 {
			q.state.Vel = mathx.Vec3{}
			q.state.Omega = mathx.Vec3{}
			// settle level, keep yaw
			_, _, yaw := q.state.Att.Euler()
			q.state.Att = mathx.QuatFromEuler(0, 0, yaw)
		}
		q.onGround = totalThrust < m*units.Gravity
	} else {
		q.onGround = false
	}
}
