package sim

import (
	"math"
	"testing"

	"dronedse/mathx"
	"dronedse/propulsion"
)

func TestNewQuadValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.MassKg = 0
	if _, err := NewQuad(bad); err == nil {
		t.Error("zero mass accepted")
	}
	bad = DefaultConfig()
	bad.TWR = 1.0
	if _, err := NewQuad(bad); err == nil {
		t.Error("TWR 1 accepted")
	}
	if _, err := NewQuad(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestHoverEquilibrium(t *testing.T) {
	q, _ := NewQuad(DefaultConfig())
	q.Teleport(mathx.V3(0, 0, 10))
	hover := q.HoverThrustPerMotorN()
	q.CommandThrusts([NumMotors]float64{hover, hover, hover, hover})
	for i := 0; i < 5000; i++ {
		q.Step(1e-3)
	}
	s := q.State()
	if math.Abs(s.Pos.Z-10) > 0.2 {
		t.Errorf("altitude drifted to %v under exact hover thrust", s.Pos.Z)
	}
	if s.Vel.Norm() > 0.1 {
		t.Errorf("velocity %v under hover", s.Vel)
	}
	if s.Omega.Norm() > 1e-6 {
		t.Errorf("spinning under symmetric thrust: %v", s.Omega)
	}
}

func TestFreeFall(t *testing.T) {
	q, _ := NewQuad(DefaultConfig())
	q.Teleport(mathx.V3(0, 0, 100))
	q.CommandThrusts([NumMotors]float64{})
	for i := 0; i < 1000; i++ {
		q.Step(1e-3)
	}
	s := q.State()
	// After 1 s of free fall (ignoring the rotor spin-down transient and
	// drag): dropped ~4.9 m, vz ~ -9.8 m/s.
	if s.Pos.Z > 97 || s.Pos.Z < 93 {
		t.Errorf("free-fall altitude = %v, want ~95.1", s.Pos.Z)
	}
	if s.Vel.Z > -8 || s.Vel.Z < -11 {
		t.Errorf("free-fall speed = %v, want ~-9.5", s.Vel.Z)
	}
}

func TestDifferentialThrustRolls(t *testing.T) {
	q, _ := NewQuad(DefaultConfig())
	q.Teleport(mathx.V3(0, 0, 50))
	h := q.HoverThrustPerMotorN()
	// More thrust on the right (negative y) motors => positive roll torque
	// about +x is Σ y_i t_i < 0 => rolls toward -x axis... assert it rolls
	// at all and in a consistent direction.
	q.CommandThrusts([NumMotors]float64{h * 0.9, h * 1.1, h * 0.9, h * 1.1})
	for i := 0; i < 300; i++ {
		q.Step(1e-3)
	}
	roll, pitch, _ := q.State().Att.Euler()
	if math.Abs(pitch) > math.Abs(roll) {
		t.Errorf("differential left/right thrust should roll, got roll=%v pitch=%v", roll, pitch)
	}
	if roll >= 0 {
		t.Errorf("right-heavy thrust must roll negative about +x (left side down), got %v", roll)
	}
}

func TestYawFromDiagonalThrust(t *testing.T) {
	q, _ := NewQuad(DefaultConfig())
	q.Teleport(mathx.V3(0, 0, 50))
	h := q.HoverThrustPerMotorN()
	// Spin-matched diagonal pairs: boosting the +1 spin pair yaws one way.
	q.CommandThrusts([NumMotors]float64{h * 1.1, h * 0.9, h * 0.9, h * 1.1})
	for i := 0; i < 500; i++ {
		q.Step(1e-3)
	}
	if math.Abs(q.State().Omega.Z) < 0.05 {
		t.Errorf("diagonal differential should yaw, omega=%v", q.State().Omega)
	}
}

func TestTiltedThrustTranslates(t *testing.T) {
	q, _ := NewQuad(DefaultConfig())
	q.Teleport(mathx.V3(0, 0, 50))
	// Lighter front motors briefly pitch the nose down; after thrust is
	// equalized the tilted thrust vector translates the drone along +x
	// (Figure 4e, Move/Pitch).
	h := q.HoverThrustPerMotorN()
	q.CommandThrusts([NumMotors]float64{h * 0.99, h * 0.99, h * 1.01, h * 1.01})
	for i := 0; i < 100; i++ {
		q.Step(1e-3)
	}
	q.CommandThrusts([NumMotors]float64{h, h, h, h})
	for i := 0; i < 1900; i++ {
		q.Step(1e-3)
	}
	_, pitch, _ := q.State().Att.Euler()
	if pitch <= 0 {
		t.Errorf("light-front thrust should pitch positive (nose down), got %v", pitch)
	}
	if q.State().Vel.X <= 0.1 {
		t.Errorf("nose-down pitch should translate +x, vel=%v", q.State().Vel)
	}
}

func TestGroundContact(t *testing.T) {
	q, _ := NewQuad(DefaultConfig())
	q.Teleport(mathx.V3(0, 0, 2))
	q.CommandThrusts([NumMotors]float64{})
	for i := 0; i < 3000; i++ {
		q.Step(1e-3)
	}
	s := q.State()
	if s.Pos.Z != 0 {
		t.Errorf("did not land: z=%v", s.Pos.Z)
	}
	if !q.OnGround() {
		t.Error("OnGround false after landing without thrust")
	}
	if s.Vel.Norm() > 1e-9 {
		t.Errorf("moving on the ground: %v", s.Vel)
	}
}

func TestThrustClamp(t *testing.T) {
	q, _ := NewQuad(DefaultConfig())
	max := q.MaxThrustPerMotorN()
	q.CommandThrusts([NumMotors]float64{1e9, -5, max / 2, max})
	q.Step(1e-3)
	th := q.MotorThrusts()
	if th[0] > max+1e-9 {
		t.Errorf("over-commanded motor thrust %v exceeds max %v", th[0], max)
	}
	if th[1] < 0 {
		t.Errorf("negative thrust %v", th[1])
	}
}

func TestRotorLagIsPhysical(t *testing.T) {
	q, _ := NewQuad(DefaultConfig())
	q.Teleport(mathx.V3(0, 0, 10))
	max := q.MaxThrustPerMotorN()
	q.CommandThrusts([NumMotors]float64{max, max, max, max})
	q.Step(1e-3)
	th := q.MotorThrusts()
	hover := q.HoverThrustPerMotorN()
	// One millisecond after a max-thrust command the rotor must NOT have
	// reached it: the spin-up lag is the §2.1.3-D physical response floor.
	if th[0] > hover+0.5*(max-hover) {
		t.Errorf("rotor reached %v of commanded %v in 1 ms; lag missing", th[0], max)
	}
	if q.RotorTimeConstant() < 0.01 {
		t.Errorf("10\" rotor time constant %v s implausibly fast", q.RotorTimeConstant())
	}
}

func TestElectricalPowerScale(t *testing.T) {
	q, _ := NewQuad(DefaultConfig())
	q.Teleport(mathx.V3(0, 0, 10))
	h := q.HoverThrustPerMotorN()
	q.CommandThrusts([NumMotors]float64{h, h, h, h})
	for i := 0; i < 2000; i++ {
		q.Step(1e-3)
	}
	p := q.ElectricalPowerW()
	// The paper's 1.07 kg drone: ~90-140 W hovering.
	if p < 70 || p > 160 {
		t.Errorf("hover electrical power = %v W, want ~90-140 W", p)
	}
	if lf := q.CurrentLoadFraction(); math.Abs(lf-0.5) > 0.05 {
		t.Errorf("hover load fraction = %v, want 0.5 at TWR 2", lf)
	}
}

func TestWindPushesDrone(t *testing.T) {
	q, _ := NewQuad(DefaultConfig())
	q.SetEnvironment(WindyEnvironment(1, 8, 0))
	q.Teleport(mathx.V3(0, 0, 50))
	h := q.HoverThrustPerMotorN()
	q.CommandThrusts([NumMotors]float64{h, h, h, h})
	for i := 0; i < 3000; i++ {
		q.Step(1e-3)
	}
	if q.State().Vel.X < 0.5 {
		t.Errorf("8 m/s wind did not push the drone: vel=%v", q.State().Vel)
	}
}

func TestEnvironmentDeterminism(t *testing.T) {
	a := WindyEnvironment(7, 5, 3)
	b := WindyEnvironment(7, 5, 3)
	for i := 0; i < 100; i++ {
		t0 := float64(i) * 0.01
		if a.WindAt(t0) != b.WindAt(t0) {
			t.Fatal("same-seed environments diverge")
		}
	}
}

func TestAttitudeStaysUnit(t *testing.T) {
	q, _ := NewQuad(DefaultConfig())
	q.Teleport(mathx.V3(0, 0, 50))
	h := q.HoverThrustPerMotorN()
	q.CommandThrusts([NumMotors]float64{h * 1.2, h * 0.8, h, h})
	for i := 0; i < 10000; i++ {
		q.Step(1e-3)
		if n := q.State().Att.Norm(); math.Abs(n-1) > 1e-6 {
			t.Fatalf("attitude norm drifted to %v at step %d", n, i)
		}
	}
}

// TestElectricalPowerCacheInvalidation pins the per-step power cache: the
// cached value must match an uncached evaluation of the rotor power model
// after every mutation that changes motor thrusts (Step, Teleport), and
// repeated reads between steps must return the identical bits.
func TestElectricalPowerCacheInvalidation(t *testing.T) {
	uncached := func(q *Quad) float64 {
		p := 0.0
		for _, tN := range q.MotorThrusts() {
			p += propulsion.ElectricalPower(tN, q.propD, q.cfg.Eff)
		}
		return p
	}
	q, err := NewQuad(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := q.ElectricalPowerW(), uncached(q); got != want {
		t.Fatalf("fresh quad: cached %v != uncached %v", got, want)
	}
	q.Teleport(mathx.V3(0, 0, 10))
	if got, want := q.ElectricalPowerW(), uncached(q); got != want {
		t.Fatalf("after teleport: cached %v != uncached %v", got, want)
	}
	hover := q.HoverThrustPerMotorN()
	q.CommandThrusts([NumMotors]float64{hover * 1.2, hover, hover, hover * 0.8})
	for i := 0; i < 50; i++ {
		q.Step(1e-3)
		if got, want := q.ElectricalPowerW(), uncached(q); got != want {
			t.Fatalf("step %d: cached %v != uncached %v", i, got, want)
		}
	}
	if a, b := q.ElectricalPowerW(), q.ElectricalPowerW(); a != b {
		t.Fatalf("re-read between steps changed: %v != %v", a, b)
	}
}
