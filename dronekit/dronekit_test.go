package dronekit

import (
	"errors"
	"testing"

	"dronedse/autopilot"
	"dronedse/mathx"
	"dronedse/planner"
	"dronedse/power"
	"dronedse/sim"
)

func newVehicle(t *testing.T) *Vehicle {
	t.Helper()
	q, err := sim.NewQuad(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pack, err := power.NewPack(3, 3000, 30)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := autopilot.New(autopilot.Config{
		Quad: q, Battery: pack, ComputeW: 4.14, TakeoffAltM: 5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Connect(ap)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestConnectValidation(t *testing.T) {
	if _, err := Connect(nil); err == nil {
		t.Error("nil autopilot accepted")
	}
}

func TestArmAndTakeoff(t *testing.T) {
	v := newVehicle(t)
	attrs := v.Attributes()
	if attrs.Armed || attrs.Mode != "DISARMED" {
		t.Fatalf("initial attributes = %+v", attrs)
	}
	if err := v.ArmAndTakeoff(); err != nil {
		t.Fatal(err)
	}
	attrs = v.Attributes()
	if !attrs.Armed || attrs.Mode != "HOVER" {
		t.Fatalf("post-takeoff attributes = %+v", attrs)
	}
	if attrs.Location.Z < 4 || attrs.Location.Z > 6 {
		t.Errorf("takeoff altitude = %v", attrs.Location.Z)
	}
	if attrs.EnduranceMin < 5 || attrs.EnduranceMin > 40 {
		t.Errorf("endurance = %v min", attrs.EnduranceMin)
	}
	// Double takeoff fails cleanly.
	if err := v.ArmAndTakeoff(); err == nil {
		t.Error("second takeoff accepted")
	}
}

func TestGotoLocation(t *testing.T) {
	v := newVehicle(t)
	if err := v.ArmAndTakeoff(); err != nil {
		t.Fatal(err)
	}
	target := mathx.V3(12, -4, 7)
	if err := v.GotoLocation(target, 0); err != nil {
		t.Fatal(err)
	}
	if d := v.Attributes().Location.Sub(target).Norm(); d > 1.5 {
		t.Errorf("arrived %v m from target", d)
	}
	if v.Attributes().Mode != "HOVER" {
		t.Errorf("mode after goto = %v", v.Attributes().Mode)
	}
}

func TestFlyMissionAndRTL(t *testing.T) {
	v := newVehicle(t)
	if err := v.ArmAndTakeoff(); err != nil {
		t.Fatal(err)
	}
	plan := autopilot.MissionPlan{
		{Pos: mathx.V3(8, 0, 5), HoldS: 0.5},
		{Pos: mathx.V3(8, 8, 6), HoldS: 0.5},
	}
	if err := v.FlyMission(plan); err != nil {
		t.Fatal(err)
	}
	attrs := v.Attributes()
	if attrs.Armed {
		t.Error("still armed after mission completion")
	}
}

func TestVehicleTrajectory(t *testing.T) {
	v := newVehicle(t)
	if err := v.ArmAndTakeoff(); err != nil {
		t.Fatal(err)
	}
	tr, err := planner.PlanTrajectory([]mathx.Vec3{
		{X: 0, Y: 0, Z: 5}, {X: 8, Y: 4, Z: 6},
	}, 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.FlyTrajectory(tr); err != nil {
		t.Fatal(err)
	}
	if d := v.Attributes().Location.Sub(tr.End()).Norm(); d > 1.5 {
		t.Errorf("trajectory ended %v m from goal", d)
	}
	if err := v.ReturnToLaunch(); err != nil {
		t.Fatal(err)
	}
	if v.Attributes().Armed {
		t.Error("still armed after RTL")
	}
}

func TestLand(t *testing.T) {
	v := newVehicle(t)
	if err := v.ArmAndTakeoff(); err != nil {
		t.Fatal(err)
	}
	if err := v.Land(); err != nil {
		t.Fatal(err)
	}
	if v.Attributes().Location.Z > 0.2 {
		t.Errorf("altitude after landing = %v", v.Attributes().Location.Z)
	}
}

func TestObserve(t *testing.T) {
	v := newVehicle(t)
	if err := v.ArmAndTakeoff(); err != nil {
		t.Fatal(err)
	}
	var samples []Attributes
	v.Observe(5, 1, func(a Attributes) { samples = append(samples, a) })
	if len(samples) < 5 || len(samples) > 7 {
		t.Errorf("observed %d samples in 5 s at 1 Hz", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TimeS <= samples[i-1].TimeS {
			t.Fatal("attribute timestamps not increasing")
		}
	}
}

func TestTimeoutSurfaces(t *testing.T) {
	v := newVehicle(t)
	v.StepBudgetS = 0.2 // absurdly small budget
	err := v.ArmAndTakeoff()
	if err == nil {
		t.Fatal("takeoff within 0.2 simulated seconds?")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

// TestBlockingHelperTimeouts exhausts the step budget in every blocking
// helper: each must surface ErrTimeout (not hang, not succeed) when its
// condition cannot be met within StepBudgetS of simulated time.
func TestBlockingHelperTimeouts(t *testing.T) {
	airborne := func(t *testing.T) *Vehicle {
		t.Helper()
		v := newVehicle(t)
		if err := v.ArmAndTakeoff(); err != nil {
			t.Fatal(err)
		}
		v.StepBudgetS = 0.5 // far too little simulated time for any maneuver
		return v
	}
	wantTimeout := func(t *testing.T, name string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s completed within 0.5 simulated seconds?", name)
		}
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("%s err = %v, want ErrTimeout", name, err)
		}
	}

	t.Run("GotoLocation", func(t *testing.T) {
		v := airborne(t)
		wantTimeout(t, "GotoLocation", v.GotoLocation(mathx.V3(40, 0, 8), 0))
		// The helper must still hand control back to a hover.
		if got := v.Attributes().Mode; got != "HOVER" {
			t.Errorf("mode after timed-out goto = %v, want HOVER", got)
		}
	})
	t.Run("FlyMission", func(t *testing.T) {
		v := airborne(t)
		wantTimeout(t, "FlyMission", v.FlyMission(autopilot.MissionPlan{
			{Pos: mathx.V3(30, 30, 8), HoldS: 1},
		}))
	})
	t.Run("FlyTrajectory", func(t *testing.T) {
		v := airborne(t)
		tr, err := planner.PlanTrajectory([]mathx.Vec3{
			{X: 0, Y: 0, Z: 5}, {X: 25, Y: 0, Z: 6},
		}, 0.4, 0.2) // crawl: needs far longer than TotalS + 0.5 s slack
		if err != nil {
			t.Fatal(err)
		}
		v.StepBudgetS = -tr.TotalS + 0.5 // net waitFor budget of 0.5 s
		wantTimeout(t, "FlyTrajectory", v.FlyTrajectory(tr))
	})
	t.Run("ReturnToLaunch", func(t *testing.T) {
		v := airborne(t)
		wantTimeout(t, "ReturnToLaunch", v.ReturnToLaunch())
	})
	t.Run("Land", func(t *testing.T) {
		v := airborne(t)
		wantTimeout(t, "Land", v.Land())
	})

	// A timeout is an error, not a wreck: the same vehicle can be given a
	// real budget and finish the verb.
	t.Run("RecoverAfterTimeout", func(t *testing.T) {
		v := airborne(t)
		wantTimeout(t, "Land", v.Land())
		v.StepBudgetS = 120
		if err := v.Land(); err != nil {
			t.Fatalf("landing with a real budget after a timeout: %v", err)
		}
		if v.Attributes().Armed {
			t.Error("still armed after recovered landing")
		}
	})
}
