// Package dronekit is the high-level-functions layer of the paper's stack
// (§4.1): a DroneKit-style API that "allows us to connect to the drone,
// issue flight commands, and monitor the drone", abstracting the MAVLink
// plumbing away from application code. It wraps the autopilot the way
// DroneKit wraps ArduCopter — blocking helpers for the common verbs plus
// attribute observation — and is what the examples and ground-station
// applications program against.
package dronekit

import (
	"errors"
	"fmt"
	"time"

	"dronedse/autopilot"
	"dronedse/mathx"
	"dronedse/planner"
)

// Vehicle is a connected drone.
type Vehicle struct {
	ap *autopilot.Autopilot
	// StepBudgetS caps how much simulated time any blocking call may
	// consume before timing out.
	StepBudgetS float64
}

// Connect wraps an autopilot instance. (With the simulator in-process the
// "connection" is direct; a remote deployment would speak MAVLink through
// dronedse/groundstation instead.)
func Connect(ap *autopilot.Autopilot) (*Vehicle, error) {
	if ap == nil {
		return nil, errors.New("dronekit: nil autopilot")
	}
	return &Vehicle{ap: ap, StepBudgetS: 300}, nil
}

// Autopilot exposes the wrapped autopilot for advanced use.
func (v *Vehicle) Autopilot() *autopilot.Autopilot { return v.ap }

// Attributes is the DroneKit-style snapshot of vehicle state.
type Attributes struct {
	Mode       string
	Armed      bool
	Location   mathx.Vec3
	Velocity   mathx.Vec3
	Heading    float64
	BatterySoC float64
	PowerW     float64
	// EnduranceMin is the live remaining-flight-time estimate.
	EnduranceMin float64
	TimeS        float64
}

// Attributes reads the current vehicle state.
func (v *Vehicle) Attributes() Attributes {
	est := v.ap.EstimatedState()
	_, _, yaw := est.Att.Euler()
	a := Attributes{
		Mode:     v.ap.Mode().String(),
		Armed:    v.ap.Mode() != autopilot.Disarmed,
		Location: est.Pos,
		Velocity: est.Vel,
		Heading:  yaw,
		PowerW:   v.ap.TotalPowerW(),
		TimeS:    v.ap.Time(),
	}
	if b := v.ap.Battery(); b != nil {
		a.BatterySoC = b.StateOfCharge()
		a.EnduranceMin = v.ap.EstimatedEnduranceMin()
	}
	return a
}

// ErrTimeout reports a blocking call that exceeded the step budget.
var ErrTimeout = errors.New("dronekit: operation timed out")

// waitFor advances the stack until cond holds or the budget runs out.
func (v *Vehicle) waitFor(cond func() bool, budgetS float64) error {
	if v.ap.RunUntil(func(*autopilot.Autopilot) bool { return cond() }, budgetS) {
		return nil
	}
	return fmt.Errorf("%w after %.0f simulated seconds (mode %v)",
		ErrTimeout, budgetS, v.ap.Mode())
}

// ArmAndTakeoff arms the vehicle and blocks until it hovers at the
// configured takeoff altitude — DroneKit's arm_and_takeoff recipe.
func (v *Vehicle) ArmAndTakeoff() error {
	if err := v.ap.Arm(); err != nil {
		return err
	}
	return v.waitFor(func() bool { return v.ap.Mode() == autopilot.Hover }, v.StepBudgetS)
}

// GotoLocation flies to a position and blocks until within acceptRadiusM
// (simple_goto). The vehicle ends loitering at the target.
func (v *Vehicle) GotoLocation(p mathx.Vec3, acceptRadiusM float64) error {
	if acceptRadiusM <= 0 {
		acceptRadiusM = 0.75
	}
	if err := v.ap.LoadMission(autopilot.MissionPlan{{Pos: p, HoldS: 3600, AcceptRadiusM: acceptRadiusM}}); err != nil {
		return err
	}
	if err := v.ap.StartMission(); err != nil {
		return err
	}
	err := v.waitFor(func() bool {
		return v.ap.EstimatedState().Pos.Sub(p).Norm() < acceptRadiusM
	}, v.StepBudgetS)
	// Hand control back to a plain hover at the target.
	v.ap.CommandHover()
	return err
}

// FlyMission uploads and flies a waypoint mission to completion (the
// vehicle RTLs and lands when done).
func (v *Vehicle) FlyMission(plan autopilot.MissionPlan) error {
	if err := v.ap.LoadMission(plan); err != nil {
		return err
	}
	if err := v.ap.StartMission(); err != nil {
		return err
	}
	return v.waitFor(func() bool { return v.ap.Mode() == autopilot.Disarmed }, v.StepBudgetS)
}

// FlyTrajectory follows a planned trajectory and blocks until it completes.
func (v *Vehicle) FlyTrajectory(tr *planner.Trajectory) error {
	if err := v.ap.FlyTrajectory(tr); err != nil {
		return err
	}
	return v.waitFor(func() bool { return v.ap.Mode() == autopilot.Hover }, tr.TotalS+v.StepBudgetS)
}

// ReturnToLaunch commands RTL and blocks through landing and disarm.
func (v *Vehicle) ReturnToLaunch() error {
	v.ap.CommandRTL()
	return v.waitFor(func() bool { return v.ap.Mode() == autopilot.Disarmed }, v.StepBudgetS)
}

// Land lands in place and blocks until disarmed.
func (v *Vehicle) Land() error {
	v.ap.CommandLand()
	return v.waitFor(func() bool { return v.ap.Mode() == autopilot.Disarmed }, v.StepBudgetS)
}

// Observe runs the stack for the given simulated duration, invoking fn at
// the given period with fresh attributes — the attribute-listener pattern.
func (v *Vehicle) Observe(durationS, periodS float64, fn func(Attributes)) {
	if periodS <= 0 {
		periodS = 1
	}
	start := v.ap.Time()
	next := start
	v.ap.RunUntil(func(a *autopilot.Autopilot) bool {
		if a.Time() >= next {
			next += periodS
			fn(v.Attributes())
		}
		return a.Time() >= start+durationS
	}, durationS+1)
}

// WallClock converts simulated seconds to a time.Duration (telemetry UIs).
func WallClock(simS float64) time.Duration {
	return time.Duration(simS * float64(time.Second))
}
