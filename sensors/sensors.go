// Package sensors models the on-board acquisition suite at the data
// frequencies of Table 2a: accelerometer and gyroscope at 100-200 Hz,
// magnetometer at 10 Hz, barometer at 10-20 Hz, and GPS at 1-40 Hz, each
// with bias and Gaussian noise. The estimator (internal/estimation) fuses
// these exactly as the shared-libraries layer of Figure 5 does.
package sensors

import (
	"math/rand"

	"dronedse/mathx"
	"dronedse/sim"
	"dronedse/units"
)

// Clocked gates a sensor to its sample rate.
type Clocked struct {
	RateHz float64
	last   float64
	primed bool
}

// Due reports whether a new sample is available at time t and consumes the
// tick when it is.
func (c *Clocked) Due(t float64) bool {
	if c.RateHz <= 0 {
		return false
	}
	period := 1 / c.RateHz
	if !c.primed || t-c.last >= period-1e-12 {
		c.last = t
		c.primed = true
		return true
	}
	return false
}

// IMU is the 6-axis inertial measurement unit (§2.1.3-B lists one or two per
// flight controller).
type IMU struct {
	Clocked
	GyroNoiseStd  float64 // rad/s
	GyroBias      mathx.Vec3
	AccelNoiseStd float64 // m/s^2
	AccelBias     mathx.Vec3
	rng           *rand.Rand
}

// NewIMU returns an IMU at the given rate with typical MEMS noise.
func NewIMU(rateHz float64, seed int64) *IMU {
	r := rand.New(rand.NewSource(seed))
	return &IMU{
		Clocked:       Clocked{RateHz: rateHz},
		GyroNoiseStd:  0.003,
		AccelNoiseStd: 0.05,
		GyroBias:      mathx.V3(r.NormFloat64(), r.NormFloat64(), r.NormFloat64()).Scale(0.002),
		AccelBias:     mathx.V3(r.NormFloat64(), r.NormFloat64(), r.NormFloat64()).Scale(0.02),
		rng:           r,
	}
}

// IMUSample is one gyro+accel reading.
type IMUSample struct {
	// Gyro is the body angular rate (rad/s).
	Gyro mathx.Vec3
	// Accel is the specific force in the body frame (m/s^2): at rest it
	// reads +g along body Z.
	Accel mathx.Vec3
}

// Sample reads the IMU from the true state. trueAccelWorld is the drone's
// world-frame acceleration (excluding gravity).
func (u *IMU) Sample(s sim.State, trueAccelWorld mathx.Vec3) IMUSample {
	n := func(std float64) float64 { return u.rng.NormFloat64() * std }
	gyro := s.Omega.Add(u.GyroBias).
		Add(mathx.V3(n(u.GyroNoiseStd), n(u.GyroNoiseStd), n(u.GyroNoiseStd)))
	// Specific force = R^T (a + g ẑ).
	f := s.Att.RotateInv(trueAccelWorld.Add(mathx.V3(0, 0, units.Gravity)))
	accel := f.Add(u.AccelBias).
		Add(mathx.V3(n(u.AccelNoiseStd), n(u.AccelNoiseStd), n(u.AccelNoiseStd)))
	return IMUSample{Gyro: gyro, Accel: accel}
}

// Magnetometer reads heading at 10 Hz (Table 2a).
type Magnetometer struct {
	Clocked
	NoiseStd float64 // rad
	rng      *rand.Rand
}

// NewMagnetometer returns a magnetometer at the given rate.
func NewMagnetometer(rateHz float64, seed int64) *Magnetometer {
	return &Magnetometer{Clocked: Clocked{RateHz: rateHz}, NoiseStd: 0.02, rng: rand.New(rand.NewSource(seed))}
}

// SampleYaw returns the measured yaw (rad).
func (m *Magnetometer) SampleYaw(s sim.State) float64 {
	_, _, yaw := s.Att.Euler()
	return yaw + m.rng.NormFloat64()*m.NoiseStd
}

// Barometer reads altitude at 10-20 Hz (Table 2a).
type Barometer struct {
	Clocked
	NoiseStd float64 // m
	Bias     float64
	rng      *rand.Rand
}

// NewBarometer returns a barometer at the given rate.
func NewBarometer(rateHz float64, seed int64) *Barometer {
	r := rand.New(rand.NewSource(seed))
	return &Barometer{Clocked: Clocked{RateHz: rateHz}, NoiseStd: 0.15, Bias: r.NormFloat64() * 0.1, rng: r}
}

// SampleAltitude returns the measured altitude (m).
func (b *Barometer) SampleAltitude(s sim.State) float64 {
	return s.Pos.Z + b.Bias + b.rng.NormFloat64()*b.NoiseStd
}

// GPS reads horizontal position and velocity at 1-40 Hz (Table 2a).
type GPS struct {
	Clocked
	PosNoiseStd float64 // m
	VelNoiseStd float64 // m/s
	rng         *rand.Rand
}

// NewGPS returns a GPS at the given rate.
func NewGPS(rateHz float64, seed int64) *GPS {
	return &GPS{Clocked: Clocked{RateHz: rateHz}, PosNoiseStd: 0.8, VelNoiseStd: 0.1, rng: rand.New(rand.NewSource(seed))}
}

// GPSSample is one position/velocity fix.
type GPSSample struct {
	Pos mathx.Vec3
	Vel mathx.Vec3
}

// Sample returns a fix from the true state.
func (g *GPS) Sample(s sim.State) GPSSample {
	n := func(std float64) float64 { return g.rng.NormFloat64() * std }
	return GPSSample{
		Pos: s.Pos.Add(mathx.V3(n(g.PosNoiseStd), n(g.PosNoiseStd), n(g.PosNoiseStd*1.5))),
		Vel: s.Vel.Add(mathx.V3(n(g.VelNoiseStd), n(g.VelNoiseStd), n(g.VelNoiseStd))),
	}
}

// Sensor names the FaultView interface keys on.
const (
	SensorIMU  = "imu"
	SensorMag  = "mag"
	SensorBaro = "baro"
	SensorGPS  = "gps"
)

// FaultState describes one sensor's instantaneous fault condition. The zero
// value is nominal.
type FaultState struct {
	// Dropout loses the sample entirely (the bus went quiet).
	Dropout bool
	// Stuck repeats the last delivered value instead of sampling anew (a
	// frozen DMA buffer). A stuck sensor that never delivered behaves as a
	// dropout.
	Stuck bool
	// Bias is an additive offset injected into the delivered sample
	// (bias-jump faults). Scalar sensors read the X component. IMU faults
	// bias the accelerometer axes.
	Bias mathx.Vec3
}

// FaultView answers per-sensor fault queries at sample time. Fault
// injectors (package faultx) implement it; a nil view means nominal
// operation, and a view reporting zero FaultStates must leave the sampled
// values — including the noise RNG stream — untouched.
type FaultView interface {
	SensorFault(sensor string, t float64) FaultState
}

// Suite bundles the Table 2a sensor set at its reference rates.
type Suite struct {
	IMU  *IMU
	Mag  *Magnetometer
	Baro *Barometer
	GPS  *GPS

	// Faults, when non-nil, is consulted by the Sample* suite methods on
	// every due sample; it gates dropout/stuck/bias faults per sensor.
	Faults FaultView

	// held last-delivered samples, replayed by stuck faults.
	lastIMU    IMUSample
	lastIMUOK  bool
	lastGPS    GPSSample
	lastGPSOK  bool
	lastBaro   float64
	lastBaroOK bool
	lastYaw    float64
	lastYawOK  bool
}

// NewSuite builds the default suite: IMU 200 Hz, magnetometer 10 Hz,
// barometer 15 Hz, GPS 5 Hz.
func NewSuite(seed int64) *Suite {
	return &Suite{
		IMU:  NewIMU(200, seed),
		Mag:  NewMagnetometer(10, seed+1),
		Baro: NewBarometer(15, seed+2),
		GPS:  NewGPS(5, seed+3),
	}
}

// fault returns the active fault state for a sensor, nominal when no view
// is installed.
func (s *Suite) fault(name string, t float64) FaultState {
	if s.Faults == nil {
		return FaultState{}
	}
	return s.Faults.SensorFault(name, t)
}

// SampleIMU reads the IMU if a sample is due at t, applying any installed
// faults. ok is false when no sample is due or the sample dropped out.
func (s *Suite) SampleIMU(t float64, st sim.State, trueAccelWorld mathx.Vec3) (IMUSample, bool) {
	if !s.IMU.Due(t) {
		return IMUSample{}, false
	}
	f := s.fault(SensorIMU, t)
	if f.Dropout || (f.Stuck && !s.lastIMUOK) {
		return IMUSample{}, false
	}
	var sm IMUSample
	if f.Stuck {
		sm = s.lastIMU
	} else {
		sm = s.IMU.Sample(st, trueAccelWorld)
		if f.Bias != (mathx.Vec3{}) {
			sm.Accel = sm.Accel.Add(f.Bias)
		}
	}
	s.lastIMU, s.lastIMUOK = sm, true
	return sm, true
}

// SampleGPS reads a GPS fix if one is due at t, applying any installed
// faults.
func (s *Suite) SampleGPS(t float64, st sim.State) (GPSSample, bool) {
	if !s.GPS.Due(t) {
		return GPSSample{}, false
	}
	f := s.fault(SensorGPS, t)
	if f.Dropout || (f.Stuck && !s.lastGPSOK) {
		return GPSSample{}, false
	}
	var fix GPSSample
	if f.Stuck {
		fix = s.lastGPS
	} else {
		fix = s.GPS.Sample(st)
		if f.Bias != (mathx.Vec3{}) {
			fix.Pos = fix.Pos.Add(f.Bias)
		}
	}
	s.lastGPS, s.lastGPSOK = fix, true
	return fix, true
}

// SampleBaro reads the barometric altitude if one is due at t, applying any
// installed faults.
func (s *Suite) SampleBaro(t float64, st sim.State) (float64, bool) {
	if !s.Baro.Due(t) {
		return 0, false
	}
	f := s.fault(SensorBaro, t)
	if f.Dropout || (f.Stuck && !s.lastBaroOK) {
		return 0, false
	}
	var alt float64
	if f.Stuck {
		alt = s.lastBaro
	} else {
		alt = s.Baro.SampleAltitude(st)
		if f.Bias.X != 0 {
			alt += f.Bias.X
		}
	}
	s.lastBaro, s.lastBaroOK = alt, true
	return alt, true
}

// SampleMagYaw reads the magnetometer yaw if one is due at t, applying any
// installed faults.
func (s *Suite) SampleMagYaw(t float64, st sim.State) (float64, bool) {
	if !s.Mag.Due(t) {
		return 0, false
	}
	f := s.fault(SensorMag, t)
	if f.Dropout || (f.Stuck && !s.lastYawOK) {
		return 0, false
	}
	var yaw float64
	if f.Stuck {
		yaw = s.lastYaw
	} else {
		yaw = s.Mag.SampleYaw(st)
		if f.Bias.X != 0 {
			yaw += f.Bias.X
		}
	}
	s.lastYaw, s.lastYawOK = yaw, true
	return yaw, true
}

// Table2a returns the paper's sensor data-frequency table as (sensor,
// frequency band) rows for the harness.
func Table2a() []struct {
	Sensor string
	LoHz   float64
	HiHz   float64
} {
	return []struct {
		Sensor string
		LoHz   float64
		HiHz   float64
	}{
		{"Accelerometer", 100, 200},
		{"Gyroscope", 100, 200},
		{"Magnetometer", 10, 10},
		{"Barometer", 10, 20},
		{"GPS", 1, 40},
	}
}
