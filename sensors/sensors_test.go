package sensors

import (
	"math"
	"testing"

	"dronedse/mathx"
	"dronedse/sim"
	"dronedse/units"
)

func TestClockedRate(t *testing.T) {
	c := Clocked{RateHz: 10}
	ticks := 0
	for i := 0; i <= 1000; i++ { // 1 s at 1 kHz
		if c.Due(float64(i) * 1e-3) {
			ticks++
		}
	}
	if ticks < 10 || ticks > 12 {
		t.Errorf("10 Hz sensor ticked %d times in 1 s", ticks)
	}
	var off Clocked
	if off.Due(1) {
		t.Error("zero-rate sensor should never be due")
	}
}

func TestTable2aRates(t *testing.T) {
	rows := Table2a()
	if len(rows) != 5 {
		t.Fatalf("Table 2a rows = %d, want 5", len(rows))
	}
	suite := NewSuite(1)
	check := func(name string, rate, lo, hi float64) {
		t.Helper()
		if rate < lo || rate > hi {
			t.Errorf("%s at %v Hz, outside Table 2a band [%v, %v]", name, rate, lo, hi)
		}
	}
	check("IMU", suite.IMU.RateHz, 100, 200)
	check("Magnetometer", suite.Mag.RateHz, 10, 10)
	check("Barometer", suite.Baro.RateHz, 10, 20)
	check("GPS", suite.GPS.RateHz, 1, 40)
}

func TestIMUAtRestReadsGravity(t *testing.T) {
	imu := NewIMU(200, 42)
	imu.AccelNoiseStd = 0
	imu.AccelBias = mathx.Vec3{}
	imu.GyroNoiseStd = 0
	imu.GyroBias = mathx.Vec3{}
	s := sim.State{Att: mathx.QuatIdentity()}
	r := imu.Sample(s, mathx.Vec3{})
	if math.Abs(r.Accel.Z-units.Gravity) > 1e-9 || math.Abs(r.Accel.X) > 1e-9 {
		t.Errorf("rest accel = %v, want (0,0,g)", r.Accel)
	}
	if r.Gyro.Norm() > 1e-12 {
		t.Errorf("rest gyro = %v", r.Gyro)
	}
}

func TestIMUTiltedReadsRotatedGravity(t *testing.T) {
	imu := NewIMU(200, 42)
	imu.AccelNoiseStd, imu.AccelBias = 0, mathx.Vec3{}
	// 90 degrees roll: gravity reads along body -Y.
	s := sim.State{Att: mathx.QuatFromAxisAngle(mathx.V3(1, 0, 0), math.Pi/2)}
	r := imu.Sample(s, mathx.Vec3{})
	if math.Abs(r.Accel.Y-units.Gravity) > 1e-9 {
		t.Errorf("rolled accel = %v, want g on +Y", r.Accel)
	}
}

func TestIMUNoiseStatistics(t *testing.T) {
	imu := NewIMU(200, 7)
	s := sim.State{Att: mathx.QuatIdentity()}
	var xs []float64
	for i := 0; i < 5000; i++ {
		xs = append(xs, imu.Sample(s, mathx.Vec3{}).Gyro.X)
	}
	mean := mathx.Mean(xs)
	sd := mathx.StdDev(xs)
	if math.Abs(mean-imu.GyroBias.X) > 3*imu.GyroNoiseStd/math.Sqrt(5000) {
		t.Errorf("gyro mean %v far from bias %v", mean, imu.GyroBias.X)
	}
	if !mathx.WithinRel(sd, imu.GyroNoiseStd, 0.1) {
		t.Errorf("gyro noise std = %v, configured %v", sd, imu.GyroNoiseStd)
	}
}

func TestGPSSampleNoise(t *testing.T) {
	g := NewGPS(5, 9)
	s := sim.State{Pos: mathx.V3(100, -50, 30), Vel: mathx.V3(1, 2, 3)}
	var errs []float64
	for i := 0; i < 2000; i++ {
		fix := g.Sample(s)
		errs = append(errs, fix.Pos.X-100)
		if fix.Vel.Sub(s.Vel).Norm() > 1 {
			t.Fatalf("velocity noise implausible: %v", fix.Vel)
		}
	}
	if !mathx.WithinRel(mathx.StdDev(errs), g.PosNoiseStd, 0.12) {
		t.Errorf("GPS position noise std = %v, configured %v", mathx.StdDev(errs), g.PosNoiseStd)
	}
}

func TestBarometer(t *testing.T) {
	b := NewBarometer(15, 3)
	s := sim.State{Pos: mathx.V3(0, 0, 12)}
	var alts []float64
	for i := 0; i < 2000; i++ {
		alts = append(alts, b.SampleAltitude(s))
	}
	if math.Abs(mathx.Mean(alts)-12-b.Bias) > 0.05 {
		t.Errorf("baro mean %v, want 12+bias(%v)", mathx.Mean(alts), b.Bias)
	}
}

func TestMagnetometer(t *testing.T) {
	m := NewMagnetometer(10, 4)
	s := sim.State{Att: mathx.QuatFromEuler(0, 0, 1.1)}
	var yaws []float64
	for i := 0; i < 2000; i++ {
		yaws = append(yaws, m.SampleYaw(s))
	}
	if math.Abs(mathx.Mean(yaws)-1.1) > 0.01 {
		t.Errorf("mag mean yaw %v, want 1.1", mathx.Mean(yaws))
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a, b := NewSuite(5), NewSuite(5)
	s := sim.State{Att: mathx.QuatIdentity(), Pos: mathx.V3(1, 2, 3)}
	for i := 0; i < 50; i++ {
		if a.IMU.Sample(s, mathx.Vec3{}) != b.IMU.Sample(s, mathx.Vec3{}) {
			t.Fatal("same-seed IMUs diverge")
		}
		if a.GPS.Sample(s) != b.GPS.Sample(s) {
			t.Fatal("same-seed GPS diverge")
		}
	}
}
