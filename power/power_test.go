package power

import (
	"math"
	"testing"
)

func TestNewPackValidation(t *testing.T) {
	if _, err := NewPack(0, 3000, 20); err == nil {
		t.Error("zero cells accepted")
	}
	if _, err := NewPack(3, -1, 20); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewPack(3, 3000, 0); err == nil {
		t.Error("zero C rating accepted")
	}
	if _, err := NewPack(3, 3000, 20); err != nil {
		t.Errorf("valid pack rejected: %v", err)
	}
}

func TestPackVoltageCurve(t *testing.T) {
	p, _ := NewPack(3, 3000, 20)
	full := p.Voltage()
	if math.Abs(full-12.6) > 0.01 {
		t.Errorf("full 3S voltage = %v, want 12.6 (4.2/cell)", full)
	}
	// Drain to the limit; voltage must fall but stay above 3.3 V/cell.
	for !p.Drained() {
		p.Draw(30, 1)
	}
	v := p.Voltage()
	if v >= full {
		t.Error("voltage did not sag under drain")
	}
	if v < 3.3*3 {
		t.Errorf("voltage fell below cutoff floor: %v", v)
	}
}

func TestPackDrainLimit(t *testing.T) {
	p, _ := NewPack(3, 1000, 30)
	// 1000 mAh at 10 A drains the 85% limit in 0.085 h = 306 s ideally;
	// at 10C the Peukert factor 10^0.05 ≈ 1.12 shortens it to ~273 s.
	secs := 0
	for !p.Drained() {
		p.Draw(10, 1)
		secs++
		if secs > 10000 {
			t.Fatal("never drained")
		}
	}
	if secs < 260 || secs > 290 {
		t.Errorf("drained after %d s, want ~273 s with Peukert at 10C", secs)
	}
	if p.StateOfCharge() > 0.16 || p.StateOfCharge() < 0.13 {
		t.Errorf("SoC at drain limit = %v, want ~0.15", p.StateOfCharge())
	}
}

func TestPackCurrentClamp(t *testing.T) {
	p, _ := NewPack(3, 1000, 10) // ceiling 10 A
	vBefore := p.Voltage()
	w := p.Draw(50, 1)
	if w > 10*vBefore+1e-9 {
		t.Errorf("delivered %v W, beyond the C-rating ceiling", w)
	}
	if p.Draw(-5, 1) != 0 {
		t.Error("negative current should deliver nothing")
	}
}

func TestPackUsableEnergy(t *testing.T) {
	p, _ := NewPack(3, 3000, 20)
	want := 3.0 * 11.1 * 0.85
	if math.Abs(p.UsableEnergyWh()-want) > 1e-9 {
		t.Errorf("usable energy = %v, want %v", p.UsableEnergyWh(), want)
	}
}

func TestPackEnergyConservation(t *testing.T) {
	p, _ := NewPack(3, 3000, 30)
	total := 0.0
	dt := 1.0
	for !p.Drained() {
		total += p.Draw(20, dt) * dt / 3600 // Wh
	}
	// Delivered energy should be near usable energy (sagging voltage means
	// somewhat less than nominal×0.85; allow a generous band).
	if total < p.UsableEnergyWh()*0.8 || total > p.UsableEnergyWh()*1.25 {
		t.Errorf("delivered %v Wh vs usable %v Wh", total, p.UsableEnergyWh())
	}
}

func TestDrawPower(t *testing.T) {
	p, _ := NewPack(3, 3000, 30)
	got := p.DrawPower(100, 1)
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("DrawPower delivered %v, want 100", got)
	}
}

func TestReset(t *testing.T) {
	p, _ := NewPack(3, 1000, 30)
	p.Draw(30, 60)
	p.Reset()
	if p.StateOfCharge() != 1 {
		t.Error("Reset did not restore charge")
	}
}

func TestESCStage(t *testing.T) {
	e := ESCStage{Efficiency: 0.9}
	if math.Abs(e.InputPower(90)-100) > 1e-9 {
		t.Errorf("InputPower = %v", e.InputPower(90))
	}
	if (ESCStage{}).InputPower(100) != 0 {
		t.Error("degenerate efficiency should return 0")
	}
}

func TestRequiredSwitchingHz(t *testing.T) {
	// 10000 RPM, 7 pole pairs: 10000/60*7*6 = 7 kHz electrical x6.
	got := RequiredSwitchingHz(10000, 7)
	if math.Abs(got-7000) > 1e-9 {
		t.Errorf("switching = %v, want 7000", got)
	}
	if RequiredSwitchingHz(6000, 0) != RequiredSwitchingHz(6000, 1) {
		t.Error("pole pairs not clamped")
	}
}

func TestPeukertEffect(t *testing.T) {
	// Same energy demand at 1C vs 6C: the high-current pack drains
	// noticeably sooner (Peukert), the low-current one barely differs
	// from ideal.
	gentle, _ := NewPack(3, 3000, 30)
	hard, _ := NewPack(3, 3000, 30)
	secsAt := func(p *Pack, amps float64) int {
		s := 0
		for !p.Drained() && s < 100000 {
			p.Draw(amps, 1)
			s++
		}
		return s
	}
	tGentle := secsAt(gentle, 3) // 1C
	tHard := secsAt(hard, 18)    // 6C
	idealGentle := 0.85 * 3.0 / 3 * 3600
	idealHard := 0.85 * 3.0 / 18 * 3600
	if float64(tGentle) < idealGentle*0.97 {
		t.Errorf("1C drain %d s, ideal %.0f s: Peukert should be negligible at 1C", tGentle, idealGentle)
	}
	if float64(tHard) > idealHard*0.95 {
		t.Errorf("6C drain %d s vs ideal %.0f s: Peukert should cost >5%%", tHard, idealHard)
	}
	// Disabling the effect restores ideal behavior.
	off, _ := NewPack(3, 3000, 30)
	off.PeukertK = 0
	tOff := secsAt(off, 18)
	if math.Abs(float64(tOff)-idealHard) > 3 {
		t.Errorf("PeukertK=0 drain %d s, want ideal %.0f s", tOff, idealHard)
	}
}

// TestVoltageMemoBitExact pins the Voltage memo: repeated calls between
// state changes return the cached value, and every state change that feeds
// the sag curve (charge drawn, injected sag, injected fade, reset) yields
// exactly the value a fresh pack at the same state computes.
func TestVoltageMemoBitExact(t *testing.T) {
	fresh := func(usedFrac, sag, fade float64) float64 {
		p, _ := NewPack(3, 3000, 30)
		p.SetFault(sag, fade)
		p.usedMah = usedFrac * p.effCapacityMah()
		return p.Voltage()
	}
	p, _ := NewPack(3, 3000, 30)
	if v1, v2 := p.Voltage(), p.Voltage(); v1 != v2 {
		t.Fatalf("idle re-read changed: %v != %v", v1, v2)
	}
	for i := 0; i < 100; i++ {
		p.DrawPower(150, 1.0)
	}
	want := fresh(p.usedMah/p.effCapacityMah(), 0, 0)
	if got := p.Voltage(); got != want {
		t.Fatalf("after draw: memo %v != fresh %v", got, want)
	}
	p.SetFault(0.6, 0.1)
	want = fresh(p.usedMah/p.effCapacityMah(), 0.6, 0.1)
	if got := p.Voltage(); got != want {
		t.Fatalf("after fault: memo %v != fresh %v", got, want)
	}
	p.SetFault(0, 0)
	p.Reset()
	if got, want := p.Voltage(), fresh(0, 0, 0); got != want {
		t.Fatalf("after reset: memo %v != fresh %v", got, want)
	}
}
