// Package power models the drone power-delivery system (§2.1.2): the LiPo
// battery pack with its drain limit, C-rating current ceiling and voltage
// sag, and the ESC conversion stage. The design-space core uses the static
// relationships; the flight simulator uses the stateful Pack to drain energy
// over a mission and produce the Figure 16b whole-drone power trace.
package power

import (
	"errors"
	"math"

	"dronedse/units"
)

// Pack is a stateful LiPo battery pack.
type Pack struct {
	Cells       int
	CapacityMah float64
	DischargeC  float64
	// PeukertK models the Peukert effect: at discharge currents above the
	// 1C reference, the effective charge consumed per amp rises as
	// (I/1C)^(K-1). LiPo chemistry is mild (1.03-1.10); zero disables the
	// effect. High-current racing drains deliver measurably less energy,
	// which is one reason the paper's short-flight ESC class exists.
	PeukertK float64
	// SagVolts is an injected pack-level voltage sag (fault injection: a
	// weak cell or a cold pack). Zero leaves the voltage model untouched.
	SagVolts float64
	// FadeFrac is an injected capacity fade in [0, 1): the fraction of
	// rated capacity lost to cell aging. Zero leaves the model untouched.
	FadeFrac float64
	// usedMah tracks consumed charge.
	usedMah float64

	// Voltage memo: the sag curve is a pure function of (usedMah, SagVolts,
	// FadeFrac), and the flight loop asks for it several times per physics
	// step (power conversion, current clamp, telemetry) between charge
	// updates. Caching on the exact inputs keeps results bit-identical while
	// paying the Pow once per state change.
	vUsed, vSag, vFade, vCached float64
	vValid                      bool
}

// NewPack builds a pack; it validates the configuration.
func NewPack(cells int, capacityMah, dischargeC float64) (*Pack, error) {
	if cells < 1 || cells > 12 {
		return nil, errors.New("power: cell count out of range")
	}
	if capacityMah <= 0 {
		return nil, errors.New("power: non-positive capacity")
	}
	if dischargeC <= 0 {
		return nil, errors.New("power: non-positive C rating")
	}
	return &Pack{Cells: cells, CapacityMah: capacityMah, DischargeC: dischargeC, PeukertK: 1.05}, nil
}

// NominalVoltage is the pack's nominal voltage (3.7 V/cell).
func (p *Pack) NominalVoltage() float64 { return units.CellsToVoltage(p.Cells) }

// Voltage returns the sagging pack voltage as a function of state of charge:
// 4.2 V/cell full, ~3.5 V/cell at the 85% drain limit, with the typical flat
// LiPo mid-curve.
func (p *Pack) Voltage() float64 {
	if p.vValid && p.vUsed == p.usedMah && p.vSag == p.SagVolts && p.vFade == p.FadeFrac {
		return p.vCached
	}
	soc := p.StateOfCharge()
	perCell := 3.3 + 0.9*math.Pow(soc, 0.6) // 4.2 at soc=1, steep near empty
	v := perCell * float64(p.Cells)
	if p.SagVolts != 0 {
		v -= p.SagVolts
		if floor := 3.0 * float64(p.Cells); v < floor {
			v = floor
		}
	}
	p.vUsed, p.vSag, p.vFade, p.vCached, p.vValid = p.usedMah, p.SagVolts, p.FadeFrac, v, true
	return v
}

// SetFault installs (or, with zeros, clears) an injected battery fault:
// a pack-level voltage sag in volts and a capacity fade fraction.
func (p *Pack) SetFault(sagVolts, fadeFrac float64) {
	if sagVolts < 0 {
		sagVolts = 0
	}
	if fadeFrac < 0 {
		fadeFrac = 0
	} else if fadeFrac > 0.95 {
		fadeFrac = 0.95
	}
	p.SagVolts, p.FadeFrac = sagVolts, fadeFrac
}

// effCapacityMah is the rated capacity after any injected fade.
func (p *Pack) effCapacityMah() float64 {
	if p.FadeFrac == 0 {
		return p.CapacityMah
	}
	return p.CapacityMah * (1 - p.FadeFrac)
}

// StateOfCharge returns the remaining fraction of rated capacity in [0,1].
func (p *Pack) StateOfCharge() float64 {
	s := 1 - p.usedMah/p.effCapacityMah()
	if s < 0 {
		return 0
	}
	return s
}

// UsableEnergyWh returns the mission-usable energy at nominal voltage,
// honoring the paper's 85% LiPoDrainLimit (and any injected capacity fade).
func (p *Pack) UsableEnergyWh() float64 {
	return units.MahToWh(p.effCapacityMah(), p.NominalVoltage()) * units.LiPoDrainLimit
}

// MaxContinuousCurrentA is the C-rating current ceiling.
func (p *Pack) MaxContinuousCurrentA() float64 {
	return units.CRatingMaxCurrent(p.CapacityMah, p.DischargeC)
}

// Drained reports whether the pack has hit the 85% drain limit: continuing
// past it damages LiPo chemistry (§2.1.2), so the autopilot must land.
func (p *Pack) Drained() bool {
	return p.usedMah >= p.effCapacityMah()*units.LiPoDrainLimit
}

// Draw consumes current (A) for dt seconds and returns the delivered power
// (W) at the present sagging voltage. Current beyond the C-rating ceiling is
// clamped — a real pack would sag and trip the ESCs.
func (p *Pack) Draw(currentA, dt float64) float64 {
	if currentA < 0 {
		currentA = 0
	}
	if max := p.MaxContinuousCurrentA(); currentA > max {
		currentA = max
	}
	v := p.Voltage()
	eff := currentA
	if p.PeukertK > 1 && currentA > 0 {
		ref := p.effCapacityMah() / 1000 // the 1C current
		if ratio := currentA / ref; ratio > 1 {
			eff = currentA * math.Pow(ratio, p.PeukertK-1)
		}
	}
	p.usedMah += eff * 1000 * dt / 3600
	return currentA * v
}

// DrawPower consumes energy at the requested electrical power (W) for dt
// seconds, converting through the present voltage, and returns the actual
// power delivered after the current clamp.
func (p *Pack) DrawPower(watts, dt float64) float64 {
	v := p.Voltage()
	if v <= 0 {
		return 0
	}
	return p.Draw(watts/v, dt)
}

// Reset restores a full charge.
func (p *Pack) Reset() { p.usedMah = 0 }

// ESCStage models the speed-controller conversion stage: efficiency and the
// switching frequency requirement (6 x rotor RPM electrical commutation,
// §3.1).
type ESCStage struct {
	Efficiency float64
}

// InputPower returns the battery-side power for a requested motor-side power.
func (e ESCStage) InputPower(motorW float64) float64 {
	if e.Efficiency <= 0 {
		return 0
	}
	return motorW / e.Efficiency
}

// RequiredSwitchingHz returns the commutation frequency for a motor running
// at the given RPM with the given pole-pair count (the paper notes 60-600 kHz
// product ranges; DShot1200 signalling runs at 74.6 kHz).
func RequiredSwitchingHz(rpm float64, polePairs int) float64 {
	if polePairs < 1 {
		polePairs = 1
	}
	return rpm / 60 * float64(polePairs) * 6
}
