// Quickstart: build a drone configuration and find out what computation
// costs it in flight time — the paper's core question in ~30 lines — then
// fly the same question closed-loop with one scenario.Run call.
package main

import (
	"fmt"
	"log"

	"dronedse/components"
	"dronedse/core"
	"dronedse/scenario"
)

func main() {
	// A 450 mm quadcopter with a 3S 5000 mAh pack and a 20 W GPU-CPU
	// compute system (Jetson-TX2-class).
	spec := core.Spec{
		WheelbaseMM: 450,
		Cells:       3,
		CapacityMah: 5000,
		TWR:         2,
		Compute:     components.AdvancedComputeTier,
		ESCClass:    components.LongFlight,
	}
	params := core.DefaultParams()

	design, err := core.Resolve(spec, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("total weight:       %.0f g\n", design.TotalG)
	fmt.Printf("hover power:        %.1f W\n", design.HoverPowerW())
	fmt.Printf("flight time:        %.1f min\n", design.HoverFlightTimeMin())
	fmt.Printf("compute footprint:  %.1f%% of total power while hovering\n",
		design.ComputeSharePct(params.HoverLoad))

	// What would moving that 20 W workload to an FPGA (0.417 W, 75 g) buy?
	gained, err := core.GainedFlightTimeMin(design, 0.417, 75, params.HoverLoad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FPGA offload gains: %+.1f min of flight time\n", gained)

	// The same question, measured instead of modeled: fly the reference box
	// mission on the full simulated stack (SLAM-class compute load) and read
	// the compute share out of the flight's energy ledger (Equation 7).
	res, err := scenario.Run(scenario.Spec{
		Seed:    1,
		Compute: scenario.Compute{SLAM: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclosed-loop flight:  %s\n", res.Summary())
	fmt.Printf("compute cost there:  %.2f min of this mission's flight time\n",
		res.ComputeFlightCostMin())
}
