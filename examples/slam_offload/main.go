// SLAM offload study: run the SLAM pipeline on one EuRoC-like sequence,
// retime it on each hardware platform, and translate each platform's power
// envelope into drone flight time with the design-space core — §5 of the
// paper as an example program.
package main

import (
	"fmt"
	"log"

	"dronedse/components"
	"dronedse/core"
	"dronedse/dataset"
	"dronedse/platform"
	"dronedse/slam"
)

func main() {
	// Run SLAM on MH01.
	spec := dataset.EuRoCSpecs()[0]
	seq, err := dataset.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	res := slam.RunSequence(seq)
	fmt.Printf("%s: %d frames, %d keyframes, ATE %.3f m\n",
		res.Name, res.Frames, res.Stats.Keyframes, res.ATE)
	baShare := 100 * float64(res.Stats.LocalBAOps+res.Stats.GlobalBAOps) / float64(res.Stats.TotalOps())
	fmt.Printf("bundle adjustment is %.0f%% of the work (paper: ≈90%% of RPi time)\n\n", baShare)

	// The host drone: the paper's 450 mm open-source platform.
	params := core.DefaultParams()
	mkSpec := func(pl platform.Platform) core.Spec {
		hostW := pl.PowerOverheadW
		if pl.Name == "RPi" {
			// Whole RPi with SLAM active: the Figure 16a burst peak.
			hostW = platform.RPiPhasePeakW(platform.AutopilotSLAMFlying)
		}
		return core.Spec{
			WheelbaseMM: 450, Cells: 3, CapacityMah: 3000, TWR: 2,
			Compute: components.ComputeTier{
				Name:    "Navio2 + " + pl.Name,
				PowerW:  1 + hostW,
				WeightG: 25 + pl.WeightOverheadG,
			},
			ESCClass: components.LongFlight,
		}
	}
	base, err := core.Resolve(mkSpec(platform.RPi()), params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %9s %9s %10s %12s %12s\n",
		"host", "speedup", "FPS", "power(W)", "flight(min)", "vs RPi(min)")
	for _, pl := range platform.All() {
		d, err := core.Resolve(mkSpec(pl), params)
		if err != nil {
			log.Fatal(err)
		}
		sp := platform.Speedup(platform.RPi(), pl, res.Stats)
		fmt.Printf("%-6s %8.2fx %9.1f %10.2f %12.1f %+12.1f\n",
			pl.Name, sp, pl.FPS(res.Stats), pl.PowerOverheadW,
			d.HoverFlightTimeMin(), d.HoverFlightTimeMin()-base.HoverFlightTimeMin())
	}
	fmt.Println("\nevery platform meets the 20 FPS camera; the FPGA is the cost-effective choice (paper §7)")
}
