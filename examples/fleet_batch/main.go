// Fleet batch: step a small fleet of independent flights on one
// scenario.Batch engine — the building block for fleet-scale simulation.
// Every lane carries its own seed-derived noise streams and fault injector,
// so each lane's Result is bit-identical to running that Spec alone with
// scenario.Run, at any worker-pool size (DESIGN.md §11).
package main

import (
	"fmt"
	"log"

	"dronedse/faultx"
	"dronedse/scenario"
)

func main() {
	// Nine lanes: three seeds, each flown clean, under a GPS-denial window,
	// and under a motor derate — the shape of a batched fault campaign.
	var specs []scenario.Spec
	var labels []string
	for seed := int64(1); seed <= 3; seed++ {
		specs = append(specs, scenario.Spec{Seed: seed, MaxSeconds: 120})
		labels = append(labels, fmt.Sprintf("seed %d clean", seed))

		denial, err := faultx.NewInjector(faultx.Plan{
			Events: []faultx.Event{{Kind: faultx.GPSDenial, Start: 8, Duration: 12}},
		}, seed)
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, scenario.Spec{Seed: seed, MaxSeconds: 120, Faults: denial})
		labels = append(labels, fmt.Sprintf("seed %d gps-denial", seed))

		derate, err := faultx.NewInjector(faultx.Plan{
			Events: []faultx.Event{{Kind: faultx.MotorDerate, Start: 5, Motor: 2, Frac: 0.85}},
		}, seed)
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, scenario.Spec{Seed: seed, MaxSeconds: 120, Faults: derate})
		labels = append(labels, fmt.Sprintf("seed %d motor-derate", seed))
	}

	// One engine, N drones: all lanes advance one physics tick per round,
	// in fixed-width chunks across the parallelx pool, with zero
	// steady-state heap allocations.
	results, errs := scenario.RunBatch(specs)
	for i := range results {
		if errs[i] != nil {
			fmt.Printf("%-22s error: %v\n", labels[i], errs[i])
			continue
		}
		fmt.Printf("%-22s %s\n", labels[i], results[i].Summary())
	}
}
