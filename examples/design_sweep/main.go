// Design sweep: walk the Figure 12 procedure across frame sizes — estimate
// weight, close the motor/ESC/battery loop, and compare the compute power
// footprint of a 3 W controller vs a 20 W GPU-CPU system on each class.
package main

import (
	"fmt"
	"log"

	"dronedse/components"
	"dronedse/core"
)

func main() {
	params := core.DefaultParams()
	tiers := []components.ComputeTier{components.BasicComputeTier, components.AdvancedComputeTier}

	for _, wb := range []float64{100, 200, 450, 800} {
		fmt.Printf("=== %.0f mm wheelbase ===\n", wb)
		for _, tier := range tiers {
			spec := core.Spec{
				WheelbaseMM: wb, Cells: 3, CapacityMah: 1000, TWR: 2,
				Compute: tier, ESCClass: components.LongFlight,
			}
			best, ok := core.BestConfig(spec, params, []int{1, 2, 3, 4, 5, 6}, 1000, 8000, 250)
			if !ok {
				fmt.Printf("  %-22s infeasible\n", tier.Name)
				continue
			}
			fmt.Printf("  %-22s best %dS %4.0f mAh: %5.0f g, %6.1f W hover, %5.1f min, compute %4.1f%%\n",
				tier.Name, best.Spec.Cells, best.Spec.CapacityMah, best.TotalG,
				best.HoverPowerW(), best.HoverFlightTimeMin(),
				best.ComputeSharePct(params.HoverLoad))
		}
		// What the 17 W difference costs on this class (Equation 7).
		spec := core.Spec{
			WheelbaseMM: wb, Cells: 3, CapacityMah: 4000, TWR: 2,
			Compute: components.AdvancedComputeTier, ESCClass: components.LongFlight,
		}
		d, err := core.Resolve(spec, params)
		if err != nil {
			log.Printf("  (4000 mAh 3S infeasible at %.0f mm)", wb)
			continue
		}
		gained, err := core.GainedFlightTimeMin(d,
			components.BasicComputeTier.PowerW, components.BasicComputeTier.WeightG,
			params.HoverLoad)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  downgrading 20 W -> 3 W compute on a 3S 4000 mAh build: %+.1f min\n\n", gained)
	}
}
