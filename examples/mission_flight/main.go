// Mission flight: the full stack end to end — the simulated drone flies a
// waypoint mission while streaming MAVLink telemetry over TCP to a ground
// station running in the same process, which monitors progress and issues
// the return-to-launch command, exactly like the paper's DroneKit +
// 915 MHz telemetry setup.
//
// The flight stack is wired by scenario.Build; because an operator command
// lands mid-mission, this example drives the flight phases itself instead
// of using the canned scenario.Run sequence.
package main

import (
	"fmt"
	"log"
	"net"

	"dronedse/autopilot"
	"dronedse/groundstation"
	"dronedse/mathx"
	"dronedse/mavlink"
	"dronedse/scenario"
)

func main() {
	// Ground station listening on loopback.
	gs := groundstation.New(nil)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- gs.ServeTCP("127.0.0.1:0", ready) }()
	addr := <-ready

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		log.Fatal(err)
	}

	mission := autopilot.MissionPlan{
		{Pos: mathx.V3(10, 0, 5), HoldS: 1},
		{Pos: mathx.V3(10, 10, 8), HoldS: 2},
	}
	// The drone side: plant + battery + autopilot, with telemetry at 1 Hz
	// of simulated time (1000 physics steps) into the TCP link.
	st, err := scenario.Build(scenario.Spec{
		Seed:    7,
		Compute: scenario.Compute{BaseW: 4.14},
		Mission: mission,
		Telemetry: scenario.Telemetry{
			EverySteps: 1000,
			Send:       func(raw []byte) { conn.Write(raw) },
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ap := st.Autopilot

	if err := ap.LoadMission(mission); err != nil {
		log.Fatal(err)
	}
	if err := ap.Arm(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("armed; taking off toward 5 m")
	ap.RunUntil(func(a *autopilot.Autopilot) bool { return a.Mode() == autopilot.Hover }, 30)
	if err := ap.StartMission(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mission started; flying 2 waypoints")

	// Fly until the second waypoint is reached, then send RTL from the
	// ground-station side, the way an operator would.
	ap.RunUntil(func(a *autopilot.Autopilot) bool {
		return a.Quad().State().Pos.Sub(mission[1].Pos).Norm() < 1
	}, 120)
	fmt.Println("waypoint 2 reached; ground station commands RTL")
	if err := ap.HandleCommand(mavlink.CommandLong{Command: mavlink.CmdRTL}); err != nil {
		log.Fatal(err)
	}
	ap.RunUntil(func(a *autopilot.Autopilot) bool { return a.Mode() == autopilot.Disarmed }, 120)
	conn.Close()
	gs.Shutdown()
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	s := gs.State()
	fmt.Printf("landed %.1f m from home after %.1f simulated seconds\n",
		st.Quad.State().Pos.Norm(), ap.Time())
	fmt.Printf("ground station saw %d frames (%d heartbeats), last position (%.1f, %.1f, %.1f), battery %.0f%%\n",
		s.Frames, s.Heartbeats, s.X, s.Y, s.Z, s.BatterySoC*100)
}
