// Mission flight: the full stack end to end — the simulated drone flies a
// waypoint mission while streaming MAVLink telemetry over TCP to a ground
// station running in the same process, which monitors progress and issues
// the return-to-launch command, exactly like the paper's DroneKit +
// 915 MHz telemetry setup.
package main

import (
	"fmt"
	"log"
	"net"

	"dronedse/autopilot"
	"dronedse/groundstation"
	"dronedse/mathx"
	"dronedse/mavlink"
	"dronedse/power"
	"dronedse/sim"
)

func main() {
	// Ground station listening on loopback.
	gs := groundstation.New(nil)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- gs.ServeTCP("127.0.0.1:0", ready) }()
	addr := <-ready

	// The drone side: plant + battery + autopilot.
	quad, err := sim.NewQuad(sim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	pack, err := power.NewPack(3, 3000, 30)
	if err != nil {
		log.Fatal(err)
	}
	ap, err := autopilot.New(autopilot.Config{
		Quad: quad, Battery: pack, ComputeW: 4.14, TakeoffAltM: 5, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		log.Fatal(err)
	}

	// Telemetry at 1 Hz of simulated time.
	var seq uint8
	lastTelem := -1.0
	ap.OnStep = func(a *autopilot.Autopilot, dt float64) {
		if a.Time()-lastTelem < 1 {
			return
		}
		lastTelem = a.Time()
		raw, err := a.Telemetry(&seq)
		if err == nil {
			conn.Write(raw)
		}
	}

	mission := autopilot.MissionPlan{
		{Pos: mathx.V3(10, 0, 5), HoldS: 1},
		{Pos: mathx.V3(10, 10, 8), HoldS: 2},
	}
	if err := ap.LoadMission(mission); err != nil {
		log.Fatal(err)
	}
	if err := ap.Arm(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("armed; taking off toward 5 m")
	ap.RunUntil(func(a *autopilot.Autopilot) bool { return a.Mode() == autopilot.Hover }, 30)
	if err := ap.StartMission(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mission started; flying 2 waypoints")

	// Fly until the second waypoint is reached, then send RTL from the
	// ground-station side, the way an operator would.
	ap.RunUntil(func(a *autopilot.Autopilot) bool {
		return a.Quad().State().Pos.Sub(mission[1].Pos).Norm() < 1
	}, 120)
	fmt.Println("waypoint 2 reached; ground station commands RTL")
	if err := ap.HandleCommand(mavlink.CommandLong{Command: mavlink.CmdRTL}); err != nil {
		log.Fatal(err)
	}
	ap.RunUntil(func(a *autopilot.Autopilot) bool { return a.Mode() == autopilot.Disarmed }, 120)
	conn.Close()
	gs.Shutdown()
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	st := gs.State()
	fmt.Printf("landed %.1f m from home after %.1f simulated seconds\n",
		quad.State().Pos.Norm(), ap.Time())
	fmt.Printf("ground station saw %d frames (%d heartbeats), last position (%.1f, %.1f, %.1f), battery %.0f%%\n",
		st.Frames, st.Heartbeats, st.X, st.Y, st.Z, st.BatterySoC*100)
}
