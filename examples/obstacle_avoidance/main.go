// Obstacle avoidance: the full outer loop of Table 1 in one program.
// Part 1 — perception: run SLAM on a synthetic sequence and turn its map
// points into an occupancy grid (the "SLAM / LiDAR mapping" application).
// Part 2 — planning & flight: build an obstacle world, plan a smoothed
// path through a window with A*, time-parametrize it, and fly it on the
// full simulated stack with velocity feed-forward.
package main

import (
	"fmt"
	"log"

	"dronedse/autopilot"
	"dronedse/dataset"
	"dronedse/mapping"
	"dronedse/mathx"
	"dronedse/planner"
	"dronedse/platform"
	"dronedse/scenario"
	"dronedse/slam"
)

func main() {
	// --- Part 1: SLAM map -> occupancy grid ---
	spec := dataset.EuRoCSpecs()[0]
	spec.Frames = 60 // a quick mapping pass
	seq, err := dataset.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	sys := slam.NewSystem(seq.Cam)
	for i := 0; i < seq.Len(); i++ {
		sys.ProcessFrame(seq.Frame(i))
	}
	points := sys.MapPointPositions()
	grid := mapping.FromPoints(points, 0.5)
	fmt.Printf("SLAM mapped %d points -> %d occupied voxels at 0.5 m\n",
		len(points), grid.OccupiedCount())

	// --- Part 2: plan through a walled world and fly it ---
	world := mapping.NewGrid(0.5)
	for y := -4.0; y <= 8; y += 0.4 {
		for z := 0.2; z <= 9; z += 0.4 {
			if y > 1.4 && y < 2.8 && z > 4.4 && z < 5.8 {
				continue // a 1.4 m window
			}
			world.InsertPoint(mathx.V3(8, y, z))
		}
	}
	inflated := world.Inflate(0.6) // drone radius + margin
	pl := planner.New(inflated, mathx.V3(-2, -6, 0.5), mathx.V3(18, 10, 10))

	start := mathx.V3(0, 0, 5)
	goal := mathx.V3(15, 0, 5)
	raw, err := pl.PlanPath(start, goal)
	if err != nil {
		log.Fatal(err)
	}
	path := pl.Smooth(raw)
	fmt.Printf("planned %.1f m path with %d waypoints (straight line blocked by the wall at x=8)\n",
		planner.PathLength(path), len(path))
	traj, err := planner.PlanTrajectory(path, 3, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trajectory: %.1f s at up to %.1f m/s\n", traj.TotalS, traj.MaxSpeed())

	// Fly it on the scenario engine: trajectory-following flight with a
	// collision-check observer watching the true position every step.
	collided := false
	st, err := scenario.Build(scenario.Spec{
		Seed:       11,
		Compute:    scenario.Compute{BaseW: platform.RPiPhasePowerW(platform.AutopilotSLAMFlying)},
		Trajectory: traj,
		Observers: []autopilot.StepObserver{func(a *autopilot.Autopilot, dt float64) {
			if world.Occupied(a.Quad().State().Pos) {
				collided = true
			}
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := st.Run(); err != nil {
		log.Fatal(err)
	}

	end := st.Quad.State().Pos
	fmt.Printf("flight done at (%.1f, %.1f, %.1f), %.1f m from the goal\n",
		end.X, end.Y, end.Z, end.Sub(goal).Norm())
	if collided {
		fmt.Println("WARNING: hit the wall!")
	} else {
		fmt.Println("threaded the window without touching the wall")
	}
}
